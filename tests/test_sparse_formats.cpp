// Storage-format tests: encode/decode round-trips, sparse GEMM equivalence
// against the dense reference, metadata accounting, and the paper's §III-A
// formulas.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/block_pruning.h"
#include "sparse/mask.h"
#include "sparse/metadata.h"
#include "sparse/nm.h"
#include "sparse/quantized.h"
#include "sparse/spmm.h"
#include "tensor/pod_stream.h"

namespace crisp::sparse {
namespace {

/// Random matrix with the CRISP hybrid pattern: uniform per-row block
/// pruning (prune `pruned_per_row` blocks per block-row) composed with N:M.
Tensor hybrid_matrix(std::int64_t rows, std::int64_t cols, std::int64_t block,
                     std::int64_t n, std::int64_t m,
                     std::int64_t pruned_per_row, Rng& rng) {
  Tensor w = Tensor::randn({rows, cols}, rng);
  // All entries non-zero with probability 1; now impose the pattern.
  Tensor scores = Tensor::rand({rows, cols}, rng, 0.01f, 1.0f);
  Tensor nm = nm_mask(as_matrix(scores, rows, cols), n, m);

  BlockGrid grid{rows, cols, block};
  Tensor bscores = block_scores(as_matrix(scores, rows, cols), grid);
  std::vector<std::int64_t> prune(
      static_cast<std::size_t>(grid.grid_rows()), pruned_per_row);
  Tensor bmask = expand_block_mask(
      uniform_row_block_mask(bscores, grid, prune), grid);

  w.mul_(nm);
  w.mul_(bmask);
  return w;
}

// ---------------------------------------------------------------------------
// CSR and ELLPACK on arbitrary random sparsity.

struct RandomCase {
  std::int64_t rows, cols;
  double density;
};

class UnstructuredFormatTest : public ::testing::TestWithParam<RandomCase> {};

TEST_P(UnstructuredFormatTest, CsrRoundTripAndSpmm) {
  const auto [rows, cols, density] = GetParam();
  Rng rng(rows * 7 + cols);
  Tensor w = Tensor::randn({rows, cols}, rng);
  for (std::int64_t i = 0; i < w.numel(); ++i)
    if (!rng.bernoulli(density)) w[i] = 0.0f;

  const CsrMatrix csr = CsrMatrix::encode(as_matrix(w, rows, cols));
  EXPECT_EQ(csr.nnz(), w.count_nonzero());
  EXPECT_TRUE(allclose(csr.decode(), w, 0.0f, 0.0f));

  Tensor x = Tensor::randn({cols, 5}, rng);
  EXPECT_TRUE(allclose(spmm(csr, x), dense_matmul(w, x), 1e-4f, 1e-4f));
}

TEST_P(UnstructuredFormatTest, EllpackRoundTripAndSpmm) {
  const auto [rows, cols, density] = GetParam();
  Rng rng(rows * 13 + cols);
  Tensor w = Tensor::randn({rows, cols}, rng);
  for (std::int64_t i = 0; i < w.numel(); ++i)
    if (!rng.bernoulli(density)) w[i] = 0.0f;

  const EllpackMatrix ell = EllpackMatrix::encode(as_matrix(w, rows, cols));
  EXPECT_TRUE(allclose(ell.decode(), w, 0.0f, 0.0f));

  Tensor x = Tensor::randn({cols, 3}, rng);
  EXPECT_TRUE(allclose(spmm(ell, x), dense_matmul(w, x), 1e-4f, 1e-4f));

  EXPECT_GE(ell.padding_fraction(), 0.0);
  EXPECT_LE(ell.padding_fraction(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Densities, UnstructuredFormatTest,
    ::testing::Values(RandomCase{8, 16, 0.5}, RandomCase{16, 32, 0.1},
                      RandomCase{5, 7, 0.3}, RandomCase{1, 64, 0.25},
                      RandomCase{32, 8, 0.9}, RandomCase{12, 12, 0.02}));

TEST(Csr, EmptyMatrix) {
  Tensor w = Tensor::zeros({4, 8});
  const CsrMatrix csr = CsrMatrix::encode(as_matrix(w, 4, 8));
  EXPECT_EQ(csr.nnz(), 0);
  EXPECT_TRUE(allclose(csr.decode(), w, 0.0f, 0.0f));
  EXPECT_EQ(csr.payload_bits(), 0);
}

TEST(Ellpack, UnevenRowsPad) {
  Tensor w({2, 4}, {1, 2, 3, 4,   //
                    0, 0, 0, 5});
  const EllpackMatrix ell = EllpackMatrix::encode(as_matrix(w, 2, 4));
  EXPECT_EQ(ell.width(), 4);
  EXPECT_NEAR(ell.padding_fraction(), 3.0 / 8.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Blocked-ELL.

TEST(BlockedEll, RoundTripSpmmAndMetadata) {
  Rng rng(3);
  // 2 of 4 block columns pruned per row, no N:M (n = m).
  Tensor w = hybrid_matrix(8, 16, 4, 4, 4, 2, rng);
  const BlockedEllMatrix bell = BlockedEllMatrix::encode(as_matrix(w, 8, 16), 4);
  EXPECT_EQ(bell.blocks_per_row(), 2);
  EXPECT_TRUE(allclose(bell.decode(), w, 0.0f, 0.0f));

  Tensor x = Tensor::randn({16, 6}, rng);
  EXPECT_TRUE(allclose(spmm(bell, x), dense_matmul(w, x), 1e-4f, 1e-4f));

  // 2 block rows x 2 surviving blocks x ceil(log2(4)) = 2 bits.
  EXPECT_EQ(bell.metadata_bits(), 2 * 2 * 2);
}

TEST(BlockedEll, RejectsNonUniformRows) {
  Tensor w = Tensor::zeros({4, 8});
  w.at({0, 0}) = 1.0f;  // block row 0 has 1 survivor
  // block row 1 has 2 survivors.
  w.at({2, 0}) = 1.0f;
  w.at({2, 4}) = 1.0f;
  EXPECT_THROW(BlockedEllMatrix::encode(as_matrix(w, 4, 8), 2),
               std::runtime_error);
}

TEST(BlockedEll, HandlesRemainderBlocks) {
  Rng rng(4);
  Tensor w = Tensor::randn({5, 10}, rng);  // 4-blocks leave remainders
  const BlockedEllMatrix bell = BlockedEllMatrix::encode(as_matrix(w, 5, 10), 4);
  EXPECT_TRUE(allclose(bell.decode(), w, 0.0f, 0.0f));
  Tensor x = Tensor::randn({10, 2}, rng);
  EXPECT_TRUE(allclose(spmm(bell, x), dense_matmul(w, x), 1e-4f, 1e-4f));
}

// ---------------------------------------------------------------------------
// CRISP hybrid format.

struct CrispCase {
  std::int64_t rows, cols, block, n, m, pruned_per_row;
};

class CrispFormatTest : public ::testing::TestWithParam<CrispCase> {};

TEST_P(CrispFormatTest, RoundTripAndSpmm) {
  const auto [rows, cols, block, n, m, pruned] = GetParam();
  Rng rng(rows + cols + block + n);
  Tensor w = hybrid_matrix(rows, cols, block, n, m, pruned, rng);
  const CrispMatrix cm = CrispMatrix::encode(as_matrix(w, rows, cols), block, n, m);

  EXPECT_TRUE(allclose(cm.decode(), w, 0.0f, 0.0f));
  Tensor x = Tensor::randn({cols, 4}, rng);
  EXPECT_TRUE(allclose(spmm(cm, x), dense_matmul(w, x), 1e-4f, 1e-4f));

  // Slot accounting: kept blocks x block rows x groups x n.
  const std::int64_t expected_blocks_per_row =
      cm.grid().grid_cols() - pruned;
  EXPECT_EQ(cm.blocks_per_row(), expected_blocks_per_row);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, CrispFormatTest,
    ::testing::Values(CrispCase{8, 16, 4, 2, 4, 1},
                      CrispCase{16, 32, 8, 1, 4, 2},
                      CrispCase{16, 32, 8, 3, 4, 0},
                      CrispCase{4, 64, 4, 2, 4, 10},
                      CrispCase{32, 16, 16, 2, 4, 0},
                      CrispCase{8, 24, 4, 1, 2, 3}));

TEST(CrispFormat, RejectsNmViolation) {
  Tensor w = Tensor::zeros({4, 8});
  // 3 non-zeros in the first group of 4 violates 2:4.
  w.at({0, 0}) = w.at({0, 1}) = w.at({0, 2}) = 1.0f;
  for (std::int64_t r = 1; r < 4; ++r) w.at({r, 0}) = 1.0f;
  EXPECT_THROW(CrispMatrix::encode(as_matrix(w, 4, 8), 4, 2, 4),
               std::runtime_error);
}

TEST(CrispFormat, RejectsBlockNotMultipleOfM) {
  Tensor w = Tensor::ones({4, 8});
  EXPECT_THROW(CrispMatrix::encode(as_matrix(w, 4, 8), 6, 2, 4),
               std::runtime_error);
}

TEST(CrispFormat, MetadataBeatsCsrAndEllpackOnHybridPattern) {
  // The Fig. 4 (right) comparison on a realistic layer shape.
  Rng rng(9);
  const std::int64_t rows = 64, cols = 256, block = 16;
  Tensor w = hybrid_matrix(rows, cols, block, 2, 4, 8, rng);  // half blocks gone

  const CrispMatrix cm = CrispMatrix::encode(as_matrix(w, rows, cols), block, 2, 4);
  const CsrMatrix csr = CsrMatrix::encode(as_matrix(w, rows, cols));
  const EllpackMatrix ell = EllpackMatrix::encode(as_matrix(w, rows, cols));

  EXPECT_LT(cm.metadata_bits(), csr.metadata_bits());
  EXPECT_LT(cm.metadata_bits(), ell.metadata_bits());
  // The paper reports roughly 5x / 7x; structured metadata should win by a
  // comfortable integer factor here.
  EXPECT_GT(static_cast<double>(csr.metadata_bits()) /
                static_cast<double>(cm.metadata_bits()),
            2.0);
}

// ---------------------------------------------------------------------------
// Quantized int8 payloads (sparse/quantized.h and the CrispMatrix carrier).

TEST(QuantizedPayload, RoundTripErrorBoundedPerElement) {
  Rng rng(21);
  // 257 elements straddle every group size (ragged last group included).
  const Tensor v = Tensor::randn({257}, rng);
  for (const std::int64_t group : {1LL, 7LL, 64LL, 300LL}) {
    const QuantizedPayload qp =
        QuantizedPayload::quantize(v.data(), v.numel(), group);
    ASSERT_EQ(qp.slot_count(), v.numel());
    ASSERT_EQ(static_cast<std::int64_t>(qp.scales.size()),
              (v.numel() + group - 1) / group);
    const std::vector<float> back = qp.dequantized();
    for (std::int64_t i = 0; i < v.numel(); ++i) {
      // The scheme's bound: |dequant(quant(x)) - x| <= scale / 2, with a
      // hair of slack for the float division/multiplication rounding.
      const float scale = qp.scale_for(i);
      EXPECT_LE(std::fabs(back[static_cast<std::size_t>(i)] - v[i]),
                0.5f * scale * 1.0001f)
          << "group " << group << ", element " << i;
    }
  }
}

TEST(QuantizedPayload, ZerosAndExtremesAreExact) {
  // One all-zero group (scale 0), one group whose max magnitude must land
  // exactly on ±127, and interior exact zeros that must stay exact.
  const std::int64_t group = 4;
  Tensor v({8}, {0.0f, 0.0f, 0.0f, 0.0f,  //
                 -2.0f, 0.0f, 0.5f, 2.0f});
  const QuantizedPayload qp = QuantizedPayload::quantize(v.data(), 8, group);
  EXPECT_EQ(qp.scales[0], 0.0f);
  EXPECT_EQ(qp.scales[1], 2.0f / 127.0f);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(qp.values[static_cast<std::size_t>(i)], 0);
  EXPECT_EQ(qp.values[4], -127);
  EXPECT_EQ(qp.values[5], 0);   // exact zero stays exact
  EXPECT_EQ(qp.values[7], 127);
  const std::vector<float> back = qp.dequantized();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(back[static_cast<std::size_t>(i)], 0.0f);
  EXPECT_EQ(back[5], 0.0f);
  EXPECT_FLOAT_EQ(back[4], -2.0f);
  EXPECT_FLOAT_EQ(back[7], 2.0f);
}

TEST(QuantizedPayload, DenormalGroupMaxKeepsTheErrorBound) {
  // amax / 127 underflows to 0 for denormal group maxima; the scale must
  // not collapse to the all-zero branch (which would break the
  // |err| <= scale/2 contract) — it is bumped to the smallest normal
  // float, under which every such value rounds to q = 0 within bound.
  Tensor v({4}, {1e-44f, -1.0e-43f, 0.0f, 1.5e-43f});
  const QuantizedPayload qp = QuantizedPayload::quantize(v.data(), 4, 4);
  ASSERT_EQ(qp.scales.size(), 1u);
  EXPECT_GT(qp.scales[0], 0.0f);
  const std::vector<float> back = qp.dequantized();
  for (int i = 0; i < 4; ++i)
    EXPECT_LE(std::fabs(back[static_cast<std::size_t>(i)] - v[i]),
              0.5f * qp.scales[0])
        << "element " << i;
}

TEST(QuantizedPayload, EmptyAndBadArguments) {
  const QuantizedPayload empty = QuantizedPayload::quantize(nullptr, 0, 16);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.payload_bits(), 0);
  float v = 1.0f;
  EXPECT_THROW(QuantizedPayload::quantize(&v, 1, 0), std::runtime_error);
}

/// Reads a payload from raw bytes, as a deserializer under attack would.
QuantizedPayload read_payload_bytes(const std::string& bytes) {
  std::stringstream is(std::ios::in | std::ios::out | std::ios::binary);
  is.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return QuantizedPayload::read(is);
}

TEST(QuantizedPayload, StreamRejectsTruncationAtEveryPrefix) {
  Rng rng(11);
  Tensor v = Tensor::randn({64}, rng);
  const QuantizedPayload qp = QuantizedPayload::quantize(v.data(), 64, 16);
  std::stringstream os(std::ios::in | std::ios::out | std::ios::binary);
  qp.write(os);
  const std::string bytes = os.str();

  // Sanity: the full stream round-trips bit-exactly.
  const QuantizedPayload back = read_payload_bytes(bytes);
  EXPECT_EQ(back.group_size, qp.group_size);
  EXPECT_EQ(back.values, qp.values);
  EXPECT_EQ(back.scales, qp.scales);

  // Every strict prefix must throw the documented runtime_error — no
  // crash, no silently short payload (exercised under ASan in CI).
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW(read_payload_bytes(bytes.substr(0, cut)), std::runtime_error)
        << "prefix of " << cut << " bytes parsed";
  }
}

TEST(QuantizedPayload, StreamRejectsCorruptHeaders) {
  Rng rng(12);
  Tensor v = Tensor::randn({32}, rng);
  const QuantizedPayload qp = QuantizedPayload::quantize(v.data(), 32, 8);

  const auto serialize = [](std::int64_t group_size,
                            const std::vector<std::int8_t>& values,
                            const std::vector<float>& scales) {
    std::stringstream os(std::ios::in | std::ios::out | std::ios::binary);
    io::write_pod(os, group_size);
    io::write_array(os, values);
    io::write_array(os, scales);
    return os.str();
  };

  // Corrupt scale-group count: one extra and one missing scale both break
  // the ceil(slots / group_size) invariant.
  std::vector<float> extra = qp.scales;
  extra.push_back(1.0f);
  EXPECT_THROW(read_payload_bytes(serialize(qp.group_size, qp.values, extra)),
               std::runtime_error);
  std::vector<float> missing = qp.scales;
  missing.pop_back();
  EXPECT_THROW(
      read_payload_bytes(serialize(qp.group_size, qp.values, missing)),
      std::runtime_error);

  // Non-positive group size with a non-empty payload.
  EXPECT_THROW(read_payload_bytes(serialize(0, qp.values, qp.scales)),
               std::runtime_error);
  EXPECT_THROW(read_payload_bytes(serialize(-8, qp.values, qp.scales)),
               std::runtime_error);

  // Empty payload carrying leftover header state.
  EXPECT_THROW(read_payload_bytes(serialize(8, {}, {})), std::runtime_error);
  EXPECT_THROW(read_payload_bytes(serialize(0, {}, {1.0f})),
               std::runtime_error);

  // Implausible element count: must throw the documented error instead of
  // attempting a huge allocation (length_error/bad_alloc).
  std::stringstream huge(std::ios::in | std::ios::out | std::ios::binary);
  io::write_pod(huge, std::int64_t{8});
  io::write_pod(huge, std::uint64_t{1} << 40);
  EXPECT_THROW(QuantizedPayload::read(huge), std::runtime_error);
}

class CrispQuantizedTest : public CrispFormatTest {};

TEST_P(CrispQuantizedTest, QuantizedSpmmAndDecodeWithinScaleBound) {
  const auto [rows, cols, block, n, m, pruned] = GetParam();
  Rng rng(rows + cols + block + n + 1);
  Tensor w = hybrid_matrix(rows, cols, block, n, m, pruned, rng);
  CrispMatrix cm = CrispMatrix::encode(as_matrix(w, rows, cols), block, n, m);
  cm.quantize_payload();
  ASSERT_TRUE(cm.has_quantized());
  ASSERT_TRUE(cm.has_fp32());  // "alongside" mode keeps both payloads

  // Per-element decode error obeys the per-block-row scale bound.
  CrispMatrix qcm = cm;
  qcm.release_fp32_payload();
  ASSERT_FALSE(qcm.has_fp32());
  const Tensor dec = cm.decode(), qdec = qcm.decode();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float scale =
        qcm.quantized_payload().scales[static_cast<std::size_t>(r / block)];
    for (std::int64_t c = 0; c < cols; ++c)
      EXPECT_LE(std::fabs(qdec[r * cols + c] - dec[r * cols + c]),
                0.5f * scale * 1.0001f)
          << "element (" << r << ", " << c << ")";
  }

  // The dequantize-on-the-fly spmm is exact for the quantized weights:
  // same multiplications as a dense product with the dequantized matrix.
  Rng xrng(99);
  const Tensor x = Tensor::randn({cols, 4}, xrng);
  const Tensor want = dense_matmul(qdec, x);
  Tensor got({rows, 4});
  cm.spmm_quantized(as_matrix(x, cols, 4), as_matrix(got, rows, 4));
  EXPECT_TRUE(allclose(got, want, 1e-4f, 1e-4f));
  // And the released matrix routes plain spmm() to the same path.
  EXPECT_FLOAT_EQ(max_abs_diff(spmm(qcm, x), got), 0.0f);
}

TEST_P(CrispQuantizedTest, StreamRoundTripCarriesQuantizedPayload) {
  const auto [rows, cols, block, n, m, pruned] = GetParam();
  Rng rng(rows + cols + block + n + 2);
  Tensor w = hybrid_matrix(rows, cols, block, n, m, pruned, rng);
  CrispMatrix cm = CrispMatrix::encode(as_matrix(w, rows, cols), block, n, m);
  cm.quantize_payload();

  // Alongside mode: both payloads survive the stream.
  std::stringstream both(std::ios::in | std::ios::out | std::ios::binary);
  cm.write(both);
  const CrispMatrix back = CrispMatrix::read(both);
  EXPECT_TRUE(back.has_fp32());
  EXPECT_TRUE(back.has_quantized());
  EXPECT_EQ(back.payload_bits(), cm.payload_bits());
  EXPECT_FLOAT_EQ(max_abs_diff(back.decode(), cm.decode()), 0.0f);

  // int8-only mode: the artifact shrinks and still decodes/multiplies.
  cm.release_fp32_payload();
  std::stringstream qonly(std::ios::in | std::ios::out | std::ios::binary);
  cm.write(qonly);
  const CrispMatrix qback = CrispMatrix::read(qonly);
  EXPECT_FALSE(qback.has_fp32());
  EXPECT_TRUE(qback.has_quantized());
  EXPECT_FLOAT_EQ(max_abs_diff(qback.decode(), cm.decode()), 0.0f);
  if (cm.slot_count() > 0) {
    // 8 bits per slot + one fp32 scale per block-row, vs 32 per slot.
    EXPECT_LT(qback.payload_bits(), cm.slot_count() * 32);
    EXPECT_EQ(qback.payload_bits(),
              cm.slot_count() * 8 +
                  static_cast<std::int64_t>(
                      cm.quantized_payload().scales.size()) *
                      32);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, CrispQuantizedTest,
    ::testing::Values(CrispCase{8, 16, 4, 2, 4, 1},
                      CrispCase{16, 32, 8, 1, 4, 2},
                      // Tail shapes: rows/cols not multiples of the block.
                      CrispCase{36, 32, 8, 2, 4, 1},
                      CrispCase{25, 50, 8, 1, 4, 2},
                      CrispCase{4, 64, 4, 2, 4, 10},
                      CrispCase{8, 24, 4, 1, 2, 3}));

TEST(CrispQuantized, AllZeroMatrixQuantizes) {
  // Every block pruned: no surviving blocks, no slots, no scales — the
  // degenerate "all-zero block rows" case must stay well-formed.
  Tensor w = Tensor::zeros({8, 16});
  CrispMatrix cm = CrispMatrix::encode(as_matrix(w, 8, 16), 4, 2, 4);
  EXPECT_EQ(cm.slot_count(), 0);
  cm.quantize_payload();
  EXPECT_FALSE(cm.has_quantized());  // nothing to quantize
  Rng rng(3);
  const Tensor x = Tensor::randn({16, 3}, rng);
  EXPECT_FLOAT_EQ(spmm(cm, x).abs_max(), 0.0f);
}

TEST(CrispQuantized, PerBlockRowScalesIsolateBands) {
  // A block survives with tiny values in one block-row and zeros rounded
  // in: per-block-row scales must isolate the bands (big row's scale does
  // not smear into the small row's band).
  Tensor w = Tensor::zeros({8, 8});
  w.at({0, 0}) = 100.0f;  // block-row 0, big magnitude
  w.at({4, 0}) = 0.001f;  // block-row 1, tiny magnitude
  CrispMatrix cm = CrispMatrix::encode(as_matrix(w, 8, 8), 4, 2, 4);
  cm.quantize_payload();
  ASSERT_EQ(cm.quantized_payload().scales.size(), 2u);
  EXPECT_FLOAT_EQ(cm.quantized_payload().scales[0], 100.0f / 127.0f);
  EXPECT_FLOAT_EQ(cm.quantized_payload().scales[1], 0.001f / 127.0f);
  cm.release_fp32_payload();
  const Tensor dec = cm.decode();
  EXPECT_NEAR(dec[0], 100.0f, 100.0f / 127.0f / 2.0f);
  EXPECT_NEAR(dec[4 * 8], 0.001f, 0.001f / 127.0f / 2.0f);
}

TEST(CrispQuantized, ReleaseWithoutQuantizeThrows) {
  Rng rng(5);
  Tensor w = hybrid_matrix(8, 16, 4, 2, 4, 1, rng);
  CrispMatrix cm = CrispMatrix::encode(as_matrix(w, 8, 16), 4, 2, 4);
  EXPECT_THROW(cm.release_fp32_payload(), std::runtime_error);
  cm.quantize_payload();
  cm.release_fp32_payload();
  EXPECT_THROW(cm.quantize_payload(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Metadata formulas (§III-A).

TEST(Metadata, BitsForIndex) {
  EXPECT_EQ(bits_for_index(1), 1);
  EXPECT_EQ(bits_for_index(2), 1);
  EXPECT_EQ(bits_for_index(3), 2);
  EXPECT_EQ(bits_for_index(4), 2);
  EXPECT_EQ(bits_for_index(5), 3);
  EXPECT_EQ(bits_for_index(1024), 10);
  EXPECT_THROW(bits_for_index(0), std::runtime_error);
}

TEST(Metadata, PaperFormulas) {
  // S=64, K'=128, B=16: (64 * 128 * floor(log2(8))) / 256 = 96 bits.
  EXPECT_EQ(paper_block_metadata_bits(64, 128, 16), 64 * 128 * 3 / 256);
  // S=64, K'=128, 2:4: 64 * 128 * (2/4) * floor(log2 4) = 8192 bits.
  EXPECT_EQ(paper_nm_metadata_bits(64, 128, 2, 4), 8192);
  EXPECT_DOUBLE_EQ(paper_average_sparsity(256, 128, 2, 4), 0.75);
  EXPECT_DOUBLE_EQ(paper_average_sparsity(256, 256, 4, 4), 0.0);
}

TEST(Metadata, KPrimeForSparsity) {
  // κ = 0.875 at 1:4 -> keep half the columns.
  const std::int64_t kp = k_prime_for_sparsity(256, 16, 1, 4, 0.875);
  EXPECT_EQ(kp, 128);
  EXPECT_EQ(kp % 16, 0);
  EXPECT_GE(paper_average_sparsity(256, kp, 1, 4), 0.875);

  // Unreachable κ below the N:M floor keeps everything.
  EXPECT_EQ(k_prime_for_sparsity(256, 16, 2, 4, 0.1), 256);
  // Extreme κ still keeps at least one block.
  EXPECT_GE(k_prime_for_sparsity(256, 16, 2, 4, 0.999), 16);
}

}  // namespace
}  // namespace crisp::sparse
