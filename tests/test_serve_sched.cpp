// Scheduling-layer tests for serve::Engine: priority classes, deadlines,
// admission control (watermark bands, infeasible-deadline rejection), load
// shedding (displacement at a full queue, in-queue expiry), the
// drain-vs-cancel shutdown statuses, and the stats ledger reconciling
// every accepted request to exactly one terminal outcome.
//
// The load-bearing invariant carried over from tests/test_serve.cpp:
// scheduling never changes the math. Priorities and deadlines decide
// *whether and when* a request runs; every served response stays
// bit-identical to the serial forward of the same sample on the dense
// path, at any kernel thread count.
//
// Timing discipline: tests that need the worker pinned down submit a
// "blocker" sample large enough (conv over 512x512) that its forward
// outlasts the microsecond-scale submits behind it by orders of magnitude,
// on any build type this suite runs under (Release, Debug, TSan).
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "kernels/parallel_for.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "serve/engine.h"
#include "thread_guard.h"

namespace crisp::serve {
namespace {

using crisp::testing::ThreadGuard;

/// Conv net that accepts any input H, W (global pooling before the head).
std::shared_ptr<nn::Sequential> make_convnet() {
  Rng rng(7);
  auto model = std::make_shared<nn::Sequential>("schednet");
  nn::Conv2dSpec c1;
  c1.in_channels = 3;
  c1.out_channels = 16;
  c1.kernel = 3;
  c1.padding = 1;
  model->emplace<nn::Conv2d>("conv1", c1, rng);
  model->emplace<nn::ReLU>("relu1");
  model->emplace<nn::GlobalAvgPool>("gap");
  model->emplace<nn::Flatten>("flatten");
  model->emplace<nn::Linear>("fc", 16, 8, rng);
  return model;
}

Tensor random_sample(std::uint64_t seed, Shape shape) {
  Rng rng(seed);
  return Tensor::randn(std::move(shape), rng);
}

/// A sample whose forward keeps the worker busy for tens of milliseconds
/// at minimum — the scheduler tests park the worker behind one of these.
Tensor blocker_sample(std::uint64_t seed) {
  return random_sample(seed, {3, 512, 512});
}

Request make_request(Tensor sample, Priority priority,
                     std::chrono::microseconds deadline =
                         std::chrono::microseconds(0)) {
  Request r;
  r.sample = std::move(sample);
  r.priority = priority;
  r.deadline = deadline;
  return r;
}

/// Serial single-sample reference through the same compiled artifact.
Tensor serial_reference(const CompiledModel& compiled, const Tensor& sample) {
  Shape batched{1};
  batched.insert(batched.end(), sample.shape().begin(), sample.shape().end());
  Tensor out = compiled.run(sample.reshaped(batched));
  Shape flat(out.shape().begin() + 1, out.shape().end());
  return out.reshaped(flat);
}

/// Lets the worker pop the just-submitted blocker before the test floods
/// the queue behind it. The blocker forward runs far longer than this.
void let_worker_pick_up_blocker() {
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
}

// A deadline that has passed while the request sat behind a busy worker
// sheds the request with Status::kExpired — it is never served late, and
// it never rides a forming batch.
TEST(Scheduling, ExpiredRequestsAreShedNotServed) {
  auto compiled = CompiledModel::compile(make_convnet());
  EngineOptions opts;
  opts.max_batch = 8;
  opts.flush_timeout = std::chrono::microseconds(0);
  Engine engine(compiled, opts);

  // The blocker is the first batch, so no run-time EMA exists yet and the
  // short deadlines below pass admission (nothing to estimate against).
  auto blocker = engine.submit(
      make_request(blocker_sample(1), Priority::kStandard));
  let_worker_pick_up_blocker();

  constexpr int kDoomed = 4;
  std::vector<std::future<Response>> doomed;
  for (int i = 0; i < kDoomed; ++i)
    doomed.push_back(engine.submit(
        make_request(random_sample(static_cast<std::uint64_t>(10 + i), {3, 8, 8}),
                     Priority::kStandard, std::chrono::milliseconds(1))));

  for (auto& f : doomed) {
    Response r = f.get();
    EXPECT_EQ(r.status, Response::Status::kExpired);
    EXPECT_TRUE(r.output.empty());
    EXPECT_EQ(r.stats.batch_size, 0);
    EXPECT_EQ(r.stats.batch_seq, -1);
    EXPECT_GT(r.stats.queue_time.count(), 0);
  }
  EXPECT_EQ(blocker.get().status, Response::Status::kOk);

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.expired, kDoomed);
  EXPECT_EQ(s.requests, 1);  // only the blocker was served
  EXPECT_EQ(s.accepted, 1 + kDoomed);
}

// Strict priority: work queued as kInteractive runs before kStandard and
// kBatch work that was already waiting — a full low-priority backlog never
// starves a more urgent class. Order is observed through batch_seq, the
// monotone id of the forward each request rode in.
TEST(Scheduling, HigherPriorityNeverStarvesBehindLowPriorityBacklog) {
  auto compiled = CompiledModel::compile(make_convnet());
  EngineOptions opts;
  opts.max_batch = 8;
  opts.queue_depth = 64;
  opts.flush_timeout = std::chrono::microseconds(0);
  Engine engine(compiled, opts);

  auto blocker = engine.submit(
      make_request(blocker_sample(2), Priority::kStandard));
  let_worker_pick_up_blocker();

  // Backlog first, urgent work last — the scheduler must invert arrival
  // order. Distinct shapes keep the classes in distinct batches, so
  // batch_seq ordering is decisive.
  std::vector<std::future<Response>> low, high;
  for (int i = 0; i < 6; ++i)
    low.push_back(engine.submit(make_request(
        random_sample(static_cast<std::uint64_t>(20 + i), {3, 8, 8}),
        Priority::kBatch)));
  for (int i = 0; i < 3; ++i)
    high.push_back(engine.submit(make_request(
        random_sample(static_cast<std::uint64_t>(40 + i), {3, 12, 12}),
        Priority::kInteractive)));

  std::int64_t max_high_seq = -1, min_low_seq = 1 << 30;
  for (auto& f : high) {
    Response r = f.get();
    ASSERT_EQ(r.status, Response::Status::kOk);
    max_high_seq = std::max(max_high_seq, r.stats.batch_seq);
  }
  for (auto& f : low) {
    Response r = f.get();
    ASSERT_EQ(r.status, Response::Status::kOk);
    min_low_seq = std::min(min_low_seq, r.stats.batch_seq);
  }
  EXPECT_NO_THROW(blocker.get());
  EXPECT_LT(max_high_seq, min_low_seq)
      << "interactive work was scheduled after the batch-class backlog";
}

// Within one priority class the queue is earliest-deadline-first, not
// FIFO: requests submitted in reverse deadline order are served in
// deadline order, and an undeadlined request runs FIFO behind every
// deadlined one. Distinct shapes keep each request in its own batch, so
// batch_seq ordering is decisive.
TEST(Scheduling, EarlierDeadlineServedFirstWithinClass) {
  auto compiled = CompiledModel::compile(make_convnet());
  EngineOptions opts;
  opts.max_batch = 8;
  opts.queue_depth = 64;
  opts.flush_timeout = std::chrono::microseconds(0);
  Engine engine(compiled, opts);

  auto blocker = engine.submit(
      make_request(blocker_sample(9), Priority::kStandard));
  let_worker_pick_up_blocker();

  // Most-relaxed first: an undeadlined request, then deadlines shrinking
  // from 3 minutes to 1. A FIFO queue would serve them in submit order;
  // EDF must exactly invert the deadlined ones and park the undeadlined
  // request behind them all.
  auto no_deadline = engine.submit(make_request(
      random_sample(120, {3, 6, 6}), Priority::kStandard));
  auto relaxed = engine.submit(make_request(
      random_sample(121, {3, 8, 8}), Priority::kStandard,
      std::chrono::minutes(3)));
  auto middle = engine.submit(make_request(
      random_sample(122, {3, 10, 10}), Priority::kStandard,
      std::chrono::minutes(2)));
  auto urgent = engine.submit(make_request(
      random_sample(123, {3, 12, 12}), Priority::kStandard,
      std::chrono::minutes(1)));

  const auto seq = [](std::future<Response>& f) {
    Response r = f.get();
    EXPECT_EQ(r.status, Response::Status::kOk);
    return r.stats.batch_seq;
  };
  const std::int64_t urgent_seq = seq(urgent);
  const std::int64_t middle_seq = seq(middle);
  const std::int64_t relaxed_seq = seq(relaxed);
  const std::int64_t fifo_seq = seq(no_deadline);
  EXPECT_NO_THROW(blocker.get());

  EXPECT_LT(urgent_seq, middle_seq);
  EXPECT_LT(middle_seq, relaxed_seq);
  EXPECT_LT(relaxed_seq, fifo_seq)
      << "undeadlined request overtook deadlined work in its class";
}

// At a full queue, a more urgent arrival displaces the youngest request of
// the least urgent queued class (Status::kShed) instead of blocking or
// being rejected behind it.
TEST(Scheduling, UrgentArrivalDisplacesYoungestLowPriorityAtFullQueue) {
  auto compiled = CompiledModel::compile(make_convnet());
  EngineOptions opts;
  opts.max_batch = 8;
  opts.queue_depth = 4;
  opts.flush_timeout = std::chrono::microseconds(0);
  opts.overflow = EngineOptions::Overflow::kReject;
  Engine engine(compiled, opts);

  auto blocker = engine.submit(
      make_request(blocker_sample(3), Priority::kStandard));
  let_worker_pick_up_blocker();

  std::vector<std::future<Response>> low;
  for (int i = 0; i < 4; ++i)  // fills queue_depth exactly
    low.push_back(engine.submit(make_request(
        random_sample(static_cast<std::uint64_t>(50 + i), {3, 8, 8}),
        Priority::kBatch)));
  std::vector<std::future<Response>> high;
  for (int i = 0; i < 2; ++i)
    high.push_back(engine.submit(make_request(
        random_sample(static_cast<std::uint64_t>(60 + i), {3, 8, 8}),
        Priority::kInteractive)));

  // Youngest-first victim selection: the last two kBatch submits are shed.
  EXPECT_EQ(low[3].get().status, Response::Status::kShed);
  EXPECT_EQ(low[2].get().status, Response::Status::kShed);
  EXPECT_EQ(low[0].get().status, Response::Status::kOk);
  EXPECT_EQ(low[1].get().status, Response::Status::kOk);
  for (auto& f : high) EXPECT_EQ(f.get().status, Response::Status::kOk);
  EXPECT_NO_THROW(blocker.get());

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.shed, 2);
  EXPECT_EQ(s.rejected, 0);
  EXPECT_EQ(s.requests, 1 + 2 + 2);  // blocker + surviving low + high
}

// The admission watermark band refuses a class early — reserving the
// queue headroom above its watermark for more urgent classes — while
// classes at watermark 1.0 keep admitting until the queue is full.
TEST(Scheduling, WatermarkBandRejectsLowPriorityEarly) {
  auto compiled = CompiledModel::compile(make_convnet());
  EngineOptions opts;
  opts.max_batch = 8;
  opts.queue_depth = 8;
  opts.flush_timeout = std::chrono::microseconds(0);
  opts.overflow = EngineOptions::Overflow::kReject;
  opts.admission_watermark[static_cast<int>(Priority::kBatch)] = 0.5;
  Engine engine(compiled, opts);

  auto blocker = engine.submit(
      make_request(blocker_sample(4), Priority::kStandard));
  let_worker_pick_up_blocker();

  // Watermark floor: 0.5 * 8 = 4 queued. The first four kBatch submits
  // land below it; the next two meet it and are refused with kRejected
  // even though four absolute slots remain.
  std::vector<std::future<Response>> low;
  for (int i = 0; i < 6; ++i)
    low.push_back(engine.submit(make_request(
        random_sample(static_cast<std::uint64_t>(70 + i), {3, 8, 8}),
        Priority::kBatch)));
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(low[static_cast<std::size_t>(i)].get().status,
              Response::Status::kOk)
        << "request " << i;
  for (int i = 4; i < 6; ++i) {
    Response r = low[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(r.status, Response::Status::kRejected) << "request " << i;
    EXPECT_EQ(r.stats.queue_time.count(), 0);  // never queued
  }

  // The reserved headroom is still there for the default-watermark class.
  std::vector<std::future<Response>> mid;
  for (int i = 0; i < 2; ++i)
    mid.push_back(engine.submit(make_request(
        random_sample(static_cast<std::uint64_t>(80 + i), {3, 8, 8}),
        Priority::kStandard)));
  for (auto& f : mid) EXPECT_EQ(f.get().status, Response::Status::kOk);
  EXPECT_NO_THROW(blocker.get());
  EXPECT_EQ(engine.stats().rejected, 2);
}

// Deadline admission control: once the engine has a run-time estimate, a
// deadline it cannot plausibly meet is refused at submit (kInfeasible)
// instead of being accepted and shed later; a deadline that has already
// passed is refused even before any estimate exists.
TEST(Scheduling, InfeasibleDeadlineRefusedAtAdmission) {
  auto compiled = CompiledModel::compile(make_convnet());
  EngineOptions opts;
  opts.flush_timeout = std::chrono::microseconds(0);
  Engine engine(compiled, opts);

  // Already-expired deadline, no EMA yet: still refused.
  {
    Response r = engine
                     .submit(make_request(random_sample(1, {3, 8, 8}),
                                          Priority::kInteractive,
                                          std::chrono::microseconds(-1)))
                     .get();
    // A negative duration is "no deadline" per Request::deadline (> 0),
    // so this one is served — pin that reading down.
    EXPECT_EQ(r.status, Response::Status::kOk);
  }

  // Seed the EMA with a forward that takes tens of milliseconds.
  EXPECT_EQ(engine.submit(make_request(blocker_sample(5), Priority::kStandard))
                .get()
                .status,
            Response::Status::kOk);

  // 1 ms deadline against a multi-ms EMA: infeasible at admission.
  Response infeasible =
      engine
          .submit(make_request(blocker_sample(6), Priority::kStandard,
                               std::chrono::milliseconds(1)))
          .get();
  EXPECT_EQ(infeasible.status, Response::Status::kInfeasible);
  EXPECT_EQ(infeasible.stats.queue_time.count(), 0);

  // A generous deadline sails through the same estimate.
  Response served =
      engine
          .submit(make_request(random_sample(2, {3, 8, 8}),
                               Priority::kStandard, std::chrono::minutes(1)))
          .get();
  EXPECT_EQ(served.status, Response::Status::kOk);

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.infeasible, 1);
  EXPECT_EQ(s.requests, 3);
}

// The small-fix satellite: shutdown(Drain::kCancel) gives queued-but-
// unserved work an explicit terminal status (kCancelled) instead of
// leaving it indistinguishable from served success, while a batch already
// in flight still completes.
TEST(Scheduling, CancelDrainGivesQueuedWorkExplicitStatus) {
  auto compiled = CompiledModel::compile(make_convnet());
  EngineOptions opts;
  opts.max_batch = 1;  // nothing coalesces with the in-flight blocker
  opts.flush_timeout = std::chrono::microseconds(0);
  Engine engine(compiled, opts);

  auto blocker = engine.submit(
      make_request(blocker_sample(7), Priority::kStandard));
  let_worker_pick_up_blocker();

  constexpr int kQueued = 5;
  std::vector<std::future<Response>> queued;
  for (int i = 0; i < kQueued; ++i)
    queued.push_back(engine.submit(make_request(
        random_sample(static_cast<std::uint64_t>(90 + i), {3, 8, 8}),
        Priority::kStandard)));

  engine.shutdown(Engine::Drain::kCancel);

  EXPECT_EQ(blocker.get().status, Response::Status::kOk);  // was in flight
  for (auto& f : queued) {
    Response r = f.get();  // must not hang and must not throw
    EXPECT_EQ(r.status, Response::Status::kCancelled);
    EXPECT_TRUE(r.output.empty());
    EXPECT_EQ(r.stats.batch_seq, -1);
  }
  EXPECT_THROW(engine.submit(random_sample(99, {3, 8, 8})),
               std::runtime_error);

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.cancelled, kQueued);
  EXPECT_EQ(s.requests, 1);
  EXPECT_EQ(s.accepted, 1 + kQueued);
}

// The stats ledger balances: every submit attempt lands in exactly one of
// accepted / rejected / infeasible, and after a drain every accepted
// request lands in exactly one of served / shed / expired / cancelled.
TEST(Scheduling, StatsLedgerReconcilesAfterDrain) {
  auto compiled = CompiledModel::compile(make_convnet());
  EngineOptions opts;
  opts.max_batch = 4;
  opts.queue_depth = 4;
  opts.flush_timeout = std::chrono::microseconds(0);
  opts.overflow = EngineOptions::Overflow::kReject;
  opts.admission_watermark[static_cast<int>(Priority::kBatch)] = 0.75;
  Engine engine(compiled, opts);

  std::int64_t attempts = 0;
  auto track = [&](Request r) {
    ++attempts;
    return engine.submit(std::move(r));
  };

  std::vector<std::future<Response>> futures;
  futures.push_back(track(make_request(blocker_sample(8), Priority::kStandard)));
  let_worker_pick_up_blocker();
  // A mix that exercises every outcome: watermark rejections (kBatch past
  // 0.75*4 = 3 queued), displacement (interactive into the full queue),
  // expiry (short deadlines parked behind the blocker), and plain serves.
  for (int i = 0; i < 3; ++i)
    futures.push_back(track(make_request(
        random_sample(static_cast<std::uint64_t>(100 + i), {3, 8, 8}),
        Priority::kBatch)));
  futures.push_back(track(make_request(random_sample(103, {3, 8, 8}),
                                       Priority::kBatch)));  // watermarked
  futures.push_back(track(make_request(random_sample(104, {3, 8, 8}),
                                       Priority::kStandard,
                                       std::chrono::milliseconds(1))));
  for (int i = 0; i < 2; ++i)
    futures.push_back(track(make_request(
        random_sample(static_cast<std::uint64_t>(110 + i), {3, 8, 8}),
        Priority::kInteractive)));

  for (auto& f : futures) EXPECT_NO_THROW(f.get());  // statuses, not throws
  engine.shutdown();

  const EngineStats s = engine.stats();
  EXPECT_EQ(attempts, s.accepted + s.rejected + s.infeasible);
  EXPECT_EQ(s.accepted, s.requests + s.shed + s.expired + s.cancelled);
  EXPECT_GT(s.rejected + s.shed + s.expired, 0)
      << "scenario failed to exercise any shedding path";
}

// Scheduling never changes the math: under the priority-aware worker,
// served outputs stay bit-identical to the serial forward of the same
// sample on the dense path, and bit-identical across 1/2/8 kernel
// threads — priorities and deadlines only reorder work.
TEST(Scheduling, BatchedParityBitwiseAcrossThreadsWithPriorities) {
  auto compiled = CompiledModel::compile(make_convnet());
  constexpr int kRequests = 24;
  constexpr Priority kCycle[] = {Priority::kInteractive, Priority::kStandard,
                                 Priority::kBatch};

  ThreadGuard guard;
  std::vector<Tensor> outputs_at_threads;
  for (const int threads : {1, 2, 8}) {
    kernels::set_num_threads(threads);
    EngineOptions opts;
    opts.max_batch = 8;
    opts.flush_timeout = std::chrono::microseconds(2000);
    Engine engine(compiled, opts);

    std::vector<std::future<Response>> futures;
    for (int i = 0; i < kRequests; ++i) {
      // Alternate classes; give every third request a generous deadline so
      // the deadline bookkeeping is in play without ever expiring.
      const auto deadline = (i % 3 == 0) ? std::chrono::microseconds(
                                               std::chrono::minutes(1))
                                         : std::chrono::microseconds(0);
      futures.push_back(engine.submit(make_request(
          random_sample(static_cast<std::uint64_t>(5000 + i), {3, 8, 8}),
          kCycle[i % 3], deadline)));
    }

    Tensor stacked({kRequests, 8});
    for (int i = 0; i < kRequests; ++i) {
      Response r = futures[static_cast<std::size_t>(i)].get();
      ASSERT_EQ(r.status, Response::Status::kOk) << "request " << i;
      const Tensor want = serial_reference(
          *compiled,
          random_sample(static_cast<std::uint64_t>(5000 + i), {3, 8, 8}));
      ASSERT_TRUE(r.output.same_shape(want));
      EXPECT_FLOAT_EQ(max_abs_diff(r.output, want), 0.0f)
          << "request " << i << " diverged from serial at " << threads
          << " threads in a batch of " << r.stats.batch_size;
      std::memcpy(stacked.data() + i * 8, r.output.data(), 8 * sizeof(float));
    }
    outputs_at_threads.push_back(std::move(stacked));
  }

  for (std::size_t t = 1; t < outputs_at_threads.size(); ++t)
    EXPECT_FLOAT_EQ(
        max_abs_diff(outputs_at_threads[0], outputs_at_threads[t]), 0.0f)
        << "scheduled serve output changed with the kernel thread count";
}

// Concurrent producers on different priority classes: everything accepted
// is served correctly (ample queue, no deadlines), exercising the
// per-class queues under real submit contention for TSan.
TEST(Scheduling, ConcurrentPrioritizedProducersAllServed) {
  auto compiled = CompiledModel::compile(make_convnet());
  EngineOptions opts;
  opts.max_batch = 8;
  opts.queue_depth = 128;
  opts.flush_timeout = std::chrono::microseconds(500);
  Engine engine(compiled, opts);

  constexpr int kPerClass = 12;
  std::vector<std::vector<std::future<Response>>> futures(3);
  std::vector<std::thread> producers;
  for (int c = 0; c < 3; ++c) {
    producers.emplace_back([&, c] {
      for (int i = 0; i < kPerClass; ++i)
        futures[static_cast<std::size_t>(c)].push_back(engine.submit(
            make_request(random_sample(
                             static_cast<std::uint64_t>(7000 + c * 100 + i),
                             {3, 8, 8}),
                         static_cast<Priority>(c))));
    });
  }
  for (auto& t : producers) t.join();

  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < kPerClass; ++i) {
      Response r = futures[static_cast<std::size_t>(c)]
                       [static_cast<std::size_t>(i)].get();
      ASSERT_EQ(r.status, Response::Status::kOk);
      const Tensor want = serial_reference(
          *compiled,
          random_sample(static_cast<std::uint64_t>(7000 + c * 100 + i),
                        {3, 8, 8}));
      EXPECT_FLOAT_EQ(max_abs_diff(r.output, want), 0.0f)
          << "class " << c << " request " << i;
    }
  }
  const EngineStats s = engine.stats();
  EXPECT_EQ(s.requests, 3 * kPerClass);
  EXPECT_EQ(s.accepted, 3 * kPerClass);
  EXPECT_EQ(s.shed + s.expired + s.rejected + s.infeasible, 0);
}

}  // namespace
}  // namespace crisp::serve
