// Baseline-pruner tests: unstructured global saliency pruning and the
// layer-wise N:M search (budget allocator + full loop), plus the channel
// and block baselines' report invariants at one place.
#include <gtest/gtest.h>

#include "core/baselines/block_pruner.h"
#include "core/baselines/channel_pruner.h"
#include "core/baselines/layerwise_nm.h"
#include "core/baselines/unstructured_pruner.h"
#include "data/class_pattern.h"
#include "nn/models/common.h"
#include "nn/trainer.h"
#include "sparse/nm.h"

namespace crisp::core {
namespace {

struct BaselineFixture {
  data::TrainTest split;
  std::unique_ptr<nn::Sequential> model;

  BaselineFixture() {
    data::ClassPatternConfig dcfg = data::ClassPatternConfig::cifar100_like();
    dcfg.num_classes = 6;
    dcfg.image_size = 8;
    dcfg.train_per_class = 6;
    dcfg.test_per_class = 2;
    dcfg.noise_std = 0.15f;
    dcfg.max_shift = 1;
    split = data::make_class_pattern_dataset(dcfg);

    nn::ModelConfig mcfg;
    mcfg.num_classes = 6;
    mcfg.input_size = 8;
    mcfg.width_mult = 0.125f;
    model = nn::make_vgg16(mcfg);
  }
};

// ---------------------------------------------------------------------------
// Unstructured pruner.

TEST(UnstructuredPruner, HitsGlobalSparsityTarget) {
  BaselineFixture f;
  UnstructuredPruneConfig cfg;
  cfg.target_sparsity = 0.9;
  cfg.iterations = 2;
  cfg.finetune_epochs = 1;
  cfg.recovery_epochs = 0;
  UnstructuredPruner pruner(*f.model, cfg);
  Rng rng(3);
  const auto report = pruner.run(f.split.train, rng);
  EXPECT_NEAR(report.achieved_sparsity, 0.9, 0.02);

  // Unstructured masks respect no structural pattern — with 90 % zeros the
  // 2:4 constraint is satisfied trivially almost everywhere, so check the
  // absence of *block* structure instead: some row keeps a different number
  // of non-zeros than another (load imbalance is the hardware complaint).
  bool imbalanced = false;
  for (nn::Parameter* p : f.model->prunable_parameters()) {
    if (!p->has_mask()) continue;
    const std::int64_t rows = p->matrix_rows, cols = p->matrix_cols;
    std::int64_t first = -1;
    for (std::int64_t r = 0; r < rows && !imbalanced; ++r) {
      std::int64_t nnz = 0;
      for (std::int64_t c = 0; c < cols; ++c)
        nnz += p->mask[r * cols + c] != 0.0f;
      if (first < 0)
        first = nnz;
      else if (nnz != first)
        imbalanced = true;
    }
    if (imbalanced) break;
  }
  EXPECT_TRUE(imbalanced) << "unstructured masks came out row-balanced?";
}

TEST(UnstructuredPruner, ZeroTargetPrunesNothing) {
  BaselineFixture f;
  UnstructuredPruneConfig cfg;
  cfg.target_sparsity = 0.0;
  cfg.iterations = 1;
  cfg.finetune_epochs = 0;
  cfg.recovery_epochs = 0;
  UnstructuredPruner pruner(*f.model, cfg);
  Rng rng(3);
  const auto report = pruner.run(f.split.train, rng);
  EXPECT_DOUBLE_EQ(report.achieved_sparsity, 0.0);
}

TEST(UnstructuredPruner, RejectsBadConfig) {
  BaselineFixture f;
  UnstructuredPruneConfig cfg;
  cfg.target_sparsity = 1.0;
  EXPECT_THROW(UnstructuredPruner(*f.model, cfg), std::runtime_error);
  cfg.target_sparsity = 0.5;
  cfg.iterations = 0;
  EXPECT_THROW(UnstructuredPruner(*f.model, cfg), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Layer-wise N:M budget allocator (pure function).

TEST(AllocateLayerN, PrefersCheapestLayerFirst) {
  // Layer 0 loses little per step; layer 1 is precious.
  const std::vector<std::vector<double>> losses{{1.0, 2.0, 4.0},
                                                {100.0, 200.0, 400.0}};
  const std::vector<std::vector<std::int64_t>> removals{{25, 25, 25},
                                                        {25, 25, 25}};
  // 200 elements total; target 25 % -> 50 removals -> two steps, both from
  // layer 0 (rates 0.04, 0.08 beat layer 1's 4.0).
  const auto n = allocate_layer_n(losses, removals, 200, 4, 1, 0.25);
  EXPECT_EQ(n[0], 2);
  EXPECT_EQ(n[1], 4);
}

TEST(AllocateLayerN, RespectsMinN) {
  const std::vector<std::vector<double>> losses{{1.0, 2.0, 4.0}};
  const std::vector<std::vector<std::int64_t>> removals{{25, 25, 25}};
  // Target wants all three steps, but min_n = 2 allows at most two.
  const auto n = allocate_layer_n(losses, removals, 100, 4, 2, 0.99);
  EXPECT_EQ(n[0], 2);
}

TEST(AllocateLayerN, ZeroTargetKeepsEveryLayerDense) {
  const std::vector<std::vector<double>> losses{{1.0, 2.0, 4.0},
                                                {5.0, 6.0, 7.0}};
  const std::vector<std::vector<std::int64_t>> removals{{10, 10, 10},
                                                        {10, 10, 10}};
  for (const std::int64_t n :
       allocate_layer_n(losses, removals, 80, 4, 1, 0.0))
    EXPECT_EQ(n, 4);
}

TEST(AllocateLayerN, StopsWhenEveryLayerGuarded) {
  const std::vector<std::vector<double>> losses{{1.0, 2.0, 4.0}};
  const std::vector<std::vector<std::int64_t>> removals{{10, 10, 10}};
  // Impossible target: guard stops the loop rather than spinning.
  const auto n = allocate_layer_n(losses, removals, 40, 4, 1, 0.99);
  EXPECT_EQ(n[0], 1);
}

TEST(AllocateLayerN, BalancesEqualLayers) {
  // Identical layers must tighten together, not one collapse first.
  const std::vector<std::vector<double>> losses{{1.0, 2.0, 4.0},
                                                {1.0, 2.0, 4.0}};
  const std::vector<std::vector<std::int64_t>> removals{{10, 10, 10},
                                                        {10, 10, 10}};
  const auto n = allocate_layer_n(losses, removals, 80, 4, 1, 0.5);
  EXPECT_EQ(n[0], n[1]);
}

// ---------------------------------------------------------------------------
// Layer-wise N:M full loop.

TEST(LayerwiseNm, MeetsBudgetWithPerLayerRatios) {
  BaselineFixture f;
  LayerwiseNmConfig cfg;
  cfg.m = 4;
  cfg.target_sparsity = 0.6;
  cfg.iterations = 2;
  cfg.finetune_epochs = 1;
  cfg.recovery_epochs = 0;
  LayerwiseNmPruner pruner(*f.model, cfg);
  Rng rng(3);
  const auto report = pruner.run(f.split.train, rng);

  EXPECT_NEAR(report.achieved_sparsity, 0.6, 0.05);
  ASSERT_EQ(report.choices.size(),
            f.model->prunable_parameters().size());
  EXPECT_EQ(report.searched_hyperparameters(),
            static_cast<std::int64_t>(report.choices.size()));

  // Every layer's mask satisfies its own chosen N_l:M.
  auto params = f.model->prunable_parameters();
  bool nonuniform = false;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const nn::Parameter& p = *params[i];
    ASSERT_TRUE(p.has_mask());
    Tensor mask = p.mask.reshaped({p.matrix_rows, p.matrix_cols});
    EXPECT_TRUE(sparse::satisfies_nm(
        as_matrix(mask, p.matrix_rows, p.matrix_cols),
        report.choices[i].n, cfg.m))
        << p.name << " violates its chosen " << report.choices[i].n << ":4";
    if (report.choices[i].n != report.choices[0].n) nonuniform = true;
  }
  // The entire point of the search: layers end up at different ratios.
  EXPECT_TRUE(nonuniform) << "search degenerated to a uniform ratio";
}

TEST(LayerwiseNm, RejectsBadConfig) {
  BaselineFixture f;
  LayerwiseNmConfig cfg;
  cfg.m = 1;
  EXPECT_THROW(LayerwiseNmPruner(*f.model, cfg), std::runtime_error);
  cfg.m = 4;
  cfg.min_n = 5;
  EXPECT_THROW(LayerwiseNmPruner(*f.model, cfg), std::runtime_error);
}

}  // namespace
}  // namespace crisp::core
