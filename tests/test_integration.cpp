// Integration tests: the full personalize-then-deploy pipeline on a tiny
// model, ending with the pruned weights executing through the CRISP storage
// format — the path a real deployment would take.
#include <gtest/gtest.h>

#include "core/pruner.h"
#include "core/unlearn.h"
#include "data/class_pattern.h"
#include "nn/flops.h"
#include "nn/models/common.h"
#include "nn/trainer.h"
#include "sparse/spmm.h"

namespace crisp {
namespace {

TEST(Integration, PruneThenExecuteThroughCrispFormat) {
  // Tiny but real: synthetic data, VGG-ish model, full CRISP loop.
  data::ClassPatternConfig dcfg = data::ClassPatternConfig::cifar100_like();
  dcfg.num_classes = 8;
  dcfg.image_size = 8;
  dcfg.train_per_class = 8;
  // 12 test samples per user class: at 4 the accuracy gate sat one sample
  // from its threshold, flipping on any legitimate change to float
  // summation order (e.g. the batch-parallel backward's fixed-tree grad
  // reduction or the BatchNorm running-stat warm-start).
  dcfg.test_per_class = 12;
  // Pin a mild difficulty: this test checks pipeline mechanics at 8 px,
  // where the presets' bench-scale noise/shift would swamp a 3-epoch model.
  dcfg.noise_std = 0.15f;
  dcfg.max_shift = 1;
  dcfg.gain_jitter = 0.15f;
  const data::TrainTest split = data::make_class_pattern_dataset(dcfg);

  nn::ModelConfig mcfg;
  mcfg.num_classes = 8;
  mcfg.input_size = 8;
  mcfg.width_mult = 0.125f;
  auto model = nn::make_vgg16(mcfg);

  nn::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 16;
  tc.sgd.lr = 0.05f;
  Rng rng(1);
  nn::train(*model, split.train, tc, rng);

  Rng urng(2);
  const auto user_classes = data::sample_user_classes(8, 3, urng);
  const data::Dataset user_train =
      data::filter_classes(split.train, user_classes);
  const data::Dataset user_test = data::filter_classes(split.test, user_classes);

  core::CrispConfig pcfg;
  pcfg.n = 2;
  pcfg.m = 4;
  pcfg.block = 8;
  pcfg.target_sparsity = 0.8;
  pcfg.iterations = 2;
  pcfg.finetune_epochs = 2;
  pcfg.recovery_epochs = 6;
  core::CrispPruner pruner(*model, pcfg);
  const core::PruneReport report = pruner.run(user_train, rng);
  EXPECT_NEAR(report.achieved_sparsity(), 0.8, 0.04);

  // The personalized model must do clearly better than chance (1/3) on the
  // user classes despite 80 % sparsity.
  const float acc = nn::evaluate(*model, user_test, 64, user_classes);
  EXPECT_GE(acc, 0.55f) << "personalized accuracy collapsed";

  // FLOPs ratio consistent with sparsity: strictly below dense.
  const nn::FlopsReport flops = nn::count_flops(*model, {1, 3, 8, 8});
  EXPECT_LT(flops.ratio(), 0.45);
  EXPECT_GT(flops.ratio(), 0.05);

  // Deployment: every pruned layer encodes into the CRISP format and the
  // sparse kernel reproduces the dense masked GEMM bit-for-bit... well,
  // float-for-float.
  Rng xrng(3);
  std::int64_t encoded_layers = 0;
  for (nn::Parameter* p : model->prunable_parameters()) {
    const Tensor packed = p->effective_value();
    const auto mat = as_matrix(packed, p->matrix_rows, p->matrix_cols);
    const auto cm = sparse::CrispMatrix::encode(mat, pcfg.block, pcfg.n, pcfg.m);
    EXPECT_TRUE(allclose(cm.decode(),
                         packed.reshaped({p->matrix_rows, p->matrix_cols}),
                         0.0f, 0.0f))
        << p->name;

    Tensor x = Tensor::randn({p->matrix_cols, 3}, xrng);
    const Tensor via_format = sparse::spmm(cm, x);
    const Tensor via_dense = sparse::dense_matmul(
        packed.reshaped({p->matrix_rows, p->matrix_cols}), x);
    EXPECT_TRUE(allclose(via_format, via_dense, 1e-4f, 1e-4f)) << p->name;
    ++encoded_layers;
  }
  EXPECT_GT(encoded_layers, 10);

  // The metadata story of Fig. 4: CRISP format beats CSR on these layers.
  std::int64_t crisp_bits = 0, csr_bits = 0;
  for (nn::Parameter* p : model->prunable_parameters()) {
    const Tensor packed = p->effective_value();
    const auto mat = as_matrix(packed, p->matrix_rows, p->matrix_cols);
    crisp_bits +=
        sparse::CrispMatrix::encode(mat, pcfg.block, pcfg.n, pcfg.m)
            .metadata_bits();
    csr_bits += sparse::CsrMatrix::encode(mat).metadata_bits();
  }
  EXPECT_LT(crisp_bits, csr_bits);
}

TEST(Integration, BakedModelPredictsIdentically) {
  data::ClassPatternConfig dcfg = data::ClassPatternConfig::cifar100_like();
  dcfg.num_classes = 5;
  dcfg.image_size = 8;
  dcfg.train_per_class = 4;
  dcfg.test_per_class = 2;
  const data::TrainTest split = data::make_class_pattern_dataset(dcfg);

  nn::ModelConfig mcfg;
  mcfg.num_classes = 5;
  mcfg.input_size = 8;
  mcfg.width_mult = 0.125f;
  auto model = nn::make_mobilenet_v2(mcfg);

  core::CrispConfig pcfg;
  pcfg.block = 8;
  pcfg.target_sparsity = 0.7;
  pcfg.iterations = 1;
  pcfg.finetune_epochs = 1;
  pcfg.recovery_epochs = 0;
  core::CrispPruner pruner(*model, pcfg);
  Rng rng(4);
  pruner.run(split.train, rng);

  Rng xrng(5);
  Tensor x = Tensor::randn({2, 3, 8, 8}, xrng);
  const Tensor before = model->forward(x, false);
  pruner.bake();  // zero out masked weights permanently
  const Tensor after = model->forward(x, false);
  EXPECT_TRUE(allclose(before, after, 1e-5f, 1e-5f));
}

TEST(Integration, HigherSparsityNeverIncreasesFlops) {
  data::ClassPatternConfig dcfg = data::ClassPatternConfig::cifar100_like();
  dcfg.num_classes = 4;
  dcfg.image_size = 8;
  dcfg.train_per_class = 4;
  dcfg.test_per_class = 2;
  const data::TrainTest split = data::make_class_pattern_dataset(dcfg);

  double last_ratio = 1.1;
  for (double kappa : {0.5, 0.7, 0.9}) {
    nn::ModelConfig mcfg;
    mcfg.num_classes = 4;
    mcfg.input_size = 8;
    mcfg.width_mult = 0.125f;
    auto model = nn::make_vgg16(mcfg);

    core::CrispConfig pcfg;
    pcfg.block = 8;
    pcfg.target_sparsity = kappa;
    pcfg.iterations = 1;
    pcfg.finetune_epochs = 1;
    pcfg.recovery_epochs = 0;
    core::CrispPruner pruner(*model, pcfg);
    Rng rng(6);
    pruner.run(split.train, rng);

    const double ratio = nn::count_flops(*model, {1, 3, 8, 8}).ratio();
    EXPECT_LT(ratio, last_ratio) << "kappa " << kappa;
    last_ratio = ratio;
  }
}

// The CRISP machinery in reverse: unlearn two classes from a trained model
// by saliency-targeted mask pruning + retain-set fine-tune. The contract
// (docs/criteria.md): forget-class accuracy drops to chance (+5 %) while
// retained-class accuracy stays within 2 % of its pre-unlearning value.
TEST(Integration, UnlearnClassesForgetsWithoutCollapsingRetained) {
  data::ClassPatternConfig dcfg = data::ClassPatternConfig::cifar100_like();
  dcfg.num_classes = 6;
  dcfg.image_size = 8;
  dcfg.train_per_class = 24;
  dcfg.test_per_class = 12;
  // Same mild difficulty as PruneThenExecuteThroughCrispFormat: the test
  // checks the unlearning mechanics, not bench-scale robustness.
  dcfg.noise_std = 0.15f;
  dcfg.max_shift = 1;
  dcfg.gain_jitter = 0.15f;
  const data::TrainTest split = data::make_class_pattern_dataset(dcfg);

  nn::ModelConfig mcfg;
  mcfg.num_classes = 6;
  mcfg.input_size = 8;
  mcfg.width_mult = 0.125f;
  auto model = nn::make_vgg16(mcfg);

  nn::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 16;
  tc.sgd.lr = 0.05f;
  Rng rng(1);
  nn::train(*model, split.train, tc, rng);

  const std::vector<std::int64_t> all_classes{0, 1, 2, 3, 4, 5};
  const std::vector<std::int64_t> forget_classes{0, 1};
  const std::vector<std::int64_t> retain_classes{2, 3, 4, 5};
  const data::Dataset forget_train =
      data::filter_classes(split.train, forget_classes);
  const data::Dataset retain_train =
      data::filter_classes(split.train, retain_classes);
  const data::Dataset forget_test =
      data::filter_classes(split.test, forget_classes);
  const data::Dataset retain_test =
      data::filter_classes(split.test, retain_classes);

  // Evaluation stays over the FULL class menu: a forgotten sample must
  // lose to the retained classes, not just get relabeled within a subset.
  const float forget_before = nn::evaluate(*model, forget_test, 64, all_classes);
  const float retain_before = nn::evaluate(*model, retain_test, 64, all_classes);
  ASSERT_GT(forget_before, 0.5f)
      << "the model never learned the forget classes; the test is vacuous";
  ASSERT_GT(retain_before, 0.5f);

  core::UnlearnConfig ucfg;
  ucfg.block = 8;  // matches the tiny model's layer widths
  ucfg.drop_per_row = 1;
  ucfg.finetune_epochs = 4;
  ucfg.batch_size = 16;
  const core::UnlearnReport rep =
      core::unlearn_classes(*model, forget_train, retain_train, ucfg, rng);

  const float forget_after = nn::evaluate(*model, forget_test, 64, all_classes);
  const float retain_after = nn::evaluate(*model, retain_test, 64, all_classes);
  const float chance = 1.0f / static_cast<float>(all_classes.size());
  EXPECT_LE(forget_after, chance + 0.05f)
      << "forget classes survived unlearning (before: " << forget_before
      << ")";
  EXPECT_GE(retain_after, retain_before - 0.02f)
      << "retained accuracy collapsed (before: " << retain_before << ")";

  // Unlearning only ever restricts the mask — sparsity grows, and at
  // least one layer actually dropped blocks.
  EXPECT_GT(rep.sparsity_after, rep.sparsity_before);
  std::int64_t pruned_layers = 0;
  for (const std::int64_t d : rep.dropped_per_row) pruned_layers += (d > 0);
  EXPECT_GT(pruned_layers, 0);
}

}  // namespace
}  // namespace crisp
