// Per-layer sensitivity analysis tests: state restoration, probe
// correctness, and the Fig. 2 expectation that sensitivity is non-uniform
// across layers.
#include <gtest/gtest.h>

#include <cmath>

#include "core/sensitivity.h"
#include "data/class_pattern.h"
#include "nn/models/common.h"
#include "nn/trainer.h"

namespace crisp::core {
namespace {

struct SensitivityFixture {
  data::TrainTest split;
  std::unique_ptr<nn::Sequential> model;

  SensitivityFixture() {
    data::ClassPatternConfig dcfg = data::ClassPatternConfig::cifar100_like();
    dcfg.num_classes = 6;
    dcfg.image_size = 8;
    dcfg.train_per_class = 8;
    dcfg.test_per_class = 4;
    dcfg.noise_std = 0.15f;
    dcfg.max_shift = 1;
    split = data::make_class_pattern_dataset(dcfg);

    nn::ModelConfig mcfg;
    mcfg.num_classes = 6;
    mcfg.input_size = 8;
    mcfg.width_mult = 0.125f;
    model = nn::make_vgg16(mcfg);

    nn::TrainConfig tc;
    // Small batches + enough epochs that the BatchNorm running statistics
    // settle — eval-mode losses are meaningless on an unsettled model.
    tc.epochs = 10;
    tc.batch_size = 8;
    tc.sgd.lr = 0.02f;
    Rng rng(1);
    nn::train(*model, split.train, tc, rng);
  }
};

TEST(Sensitivity, ProbesEveryLayerAtEveryLevel) {
  SensitivityFixture f;
  SensitivityConfig cfg;
  cfg.levels = {0.5, 0.9};
  const auto profile = layer_sensitivity(*f.model, f.split.train, cfg);
  ASSERT_EQ(profile.size(), f.model->prunable_parameters().size());
  for (const LayerSensitivity& ls : profile) {
    ASSERT_EQ(ls.levels.size(), 2u) << ls.name;
    ASSERT_EQ(ls.loss_increase.size(), 2u) << ls.name;
    EXPECT_GT(ls.base_loss, 0.0);
    // Achieved sparsity tracks the request (block quantization allowed).
    EXPECT_NEAR(ls.levels[0], 0.5, 0.15) << ls.name;
    EXPECT_NEAR(ls.levels[1], 0.9, 0.15) << ls.name;
  }
}

TEST(Sensitivity, LeavesModelStateUntouched) {
  SensitivityFixture f;
  Rng xrng(5);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, xrng);
  const Tensor before = nn::predict(*f.model, x);
  const TensorMap state_before = f.model->state_dict();

  SensitivityConfig cfg;
  cfg.levels = {0.75, 0.99};
  layer_sensitivity(*f.model, f.split.train, cfg);

  const Tensor after = nn::predict(*f.model, x);
  EXPECT_FLOAT_EQ(max_abs_diff(before, after), 0.0f);
  for (nn::Parameter* p : f.model->prunable_parameters())
    EXPECT_FALSE(p->has_mask()) << p->name << " kept a probe mask";
  const TensorMap state_after = f.model->state_dict();
  EXPECT_EQ(state_before.size(), state_after.size());
}

TEST(Sensitivity, RestoresExistingMasks) {
  SensitivityFixture f;
  // Install a recognisable mask on the first prunable layer.
  nn::Parameter* first = f.model->prunable_parameters().front();
  first->ensure_mask();
  for (std::int64_t i = 0; i < first->mask.numel(); i += 2)
    first->mask[i] = 0.0f;
  const Tensor saved = first->mask;

  SensitivityConfig cfg;
  cfg.levels = {0.9};
  layer_sensitivity(*f.model, f.split.train, cfg);
  ASSERT_TRUE(first->has_mask());
  EXPECT_FLOAT_EQ(max_abs_diff(first->mask, saved), 0.0f);
}

TEST(Sensitivity, AggressiveProbesHurtSomewhere) {
  // Monotonicity in the probe level is NOT a theorem (zeroing a layer
  // shifts BatchNorm inputs in ways that can go either direction on an
  // under-trained model), but the aggregate picture must be sane: probes
  // are finite, and at the most aggressive level at least one layer shows
  // a clearly positive loss increase — otherwise pruning would be free.
  SensitivityFixture f;
  SensitivityConfig cfg;
  cfg.levels = {0.5, 0.99};
  const auto profile = layer_sensitivity(*f.model, f.split.train, cfg);
  double worst_at_99 = -1e300;
  for (const LayerSensitivity& ls : profile) {
    for (const double d : ls.loss_increase) {
      EXPECT_TRUE(std::isfinite(d)) << ls.name;
    }
    worst_at_99 = std::max(worst_at_99, ls.loss_increase.back());
  }
  EXPECT_GT(worst_at_99, 0.05) << "no layer minds losing 99% of itself?";
}

TEST(Sensitivity, SensitivityIsNonUniformAcrossLayers) {
  // The Fig. 2 premise: at an aggressive level, some layers hurt the loss
  // far more than others.
  SensitivityFixture f;
  SensitivityConfig cfg;
  cfg.levels = {0.99};
  const auto profile = layer_sensitivity(*f.model, f.split.train, cfg);
  double lo = 1e300, hi = -1e300;
  for (const LayerSensitivity& ls : profile) {
    lo = std::min(lo, ls.loss_increase[0]);
    hi = std::max(hi, ls.loss_increase[0]);
  }
  EXPECT_GT(hi, lo * 2.0 + 0.05)
      << "all layers equally sensitive — Fig. 2 premise would not hold";
}

TEST(Sensitivity, ToleratedSparsityHelper) {
  LayerSensitivity ls;
  ls.levels = {0.5, 0.75, 0.9};
  ls.loss_increase = {0.01, 0.04, 0.50};
  EXPECT_DOUBLE_EQ(ls.tolerated_sparsity(0.05), 0.75);
  EXPECT_DOUBLE_EQ(ls.tolerated_sparsity(1.00), 0.9);
  EXPECT_DOUBLE_EQ(ls.tolerated_sparsity(0.001), 0.0);
}

TEST(Sensitivity, RejectsBadConfig) {
  SensitivityFixture f;
  SensitivityConfig cfg;
  cfg.levels = {};
  EXPECT_THROW(layer_sensitivity(*f.model, f.split.train, cfg),
               std::runtime_error);
  cfg.levels = {0.5};
  cfg.block = 6;  // not a multiple of M = 4
  EXPECT_THROW(layer_sensitivity(*f.model, f.split.train, cfg),
               std::runtime_error);
}

}  // namespace
}  // namespace crisp::core
