// Serving-layer tests: CompiledModel immutability/lifetime guarantees, the
// batched Engine's correctness under concurrent producers and mixed
// shapes, bounded-queue backpressure (block and reject), clean shutdown
// draining, and the packed-execution lifetime-hazard regression.
//
// The load-bearing invariant: batching never changes the math. Every
// engine response must equal the serial single-sample forward of the same
// input — bit-identical on the dense path (per-row kernels, per-element
// ops), and within kernel rounding on the packed path (the Linear hook
// vectorizes over the batch column, so the batch tail path may differ in
// the last bit).
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/block_pruning.h"
#include "deploy/packed_exec.h"
#include "kernels/parallel_for.h"
#include "deploy/packed_model.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "serve/engine.h"
#include "thread_guard.h"

namespace crisp::serve {
namespace {

using core::install_random_hybrid_masks;
using crisp::testing::ThreadGuard;

/// Conv net that accepts any input H, W (global pooling before the head).
std::shared_ptr<nn::Sequential> make_convnet() {
  Rng rng(7);
  auto model = std::make_shared<nn::Sequential>("servenet");
  nn::Conv2dSpec c1;
  c1.in_channels = 3;
  c1.out_channels = 16;
  c1.kernel = 3;
  c1.padding = 1;
  model->emplace<nn::Conv2d>("conv1", c1, rng);
  model->emplace<nn::ReLU>("relu1");
  model->emplace<nn::GlobalAvgPool>("gap");
  model->emplace<nn::Flatten>("flatten");
  model->emplace<nn::Linear>("fc", 16, 8, rng);
  return model;
}

std::shared_ptr<nn::Sequential> make_mlp() {
  Rng rng(9);
  auto model = std::make_shared<nn::Sequential>("servemlp");
  model->emplace<nn::Linear>("fc1", 32, 24, rng);
  model->emplace<nn::ReLU>("relu");
  model->emplace<nn::Linear>("fc2", 24, 8, rng);
  return model;
}

/// Serial single-sample reference through the same compiled artifact.
Tensor serial_reference(const CompiledModel& compiled, const Tensor& sample) {
  Shape batched{1};
  batched.insert(batched.end(), sample.shape().begin(), sample.shape().end());
  Tensor out = compiled.run(sample.reshaped(batched));
  Shape flat(out.shape().begin() + 1, out.shape().end());
  return out.reshaped(flat);
}

Tensor random_sample(std::uint64_t seed, Shape shape) {
  Rng rng(seed);
  return Tensor::randn(std::move(shape), rng);
}

TEST(CompiledModel, DenseRunMatchesPredict) {
  auto model = make_convnet();
  Rng xrng(5);
  const Tensor x = Tensor::randn({3, 3, 8, 8}, xrng);
  const Tensor want = nn::predict(*model, x);
  auto compiled = CompiledModel::compile(model);
  EXPECT_FALSE(compiled->has_packed());
  EXPECT_TRUE(compiled->packed_layers().empty());
  EXPECT_FLOAT_EQ(max_abs_diff(want, compiled->run(x)), 0.0f);
}

TEST(CompiledModel, PackedRunMatchesMaskedDense) {
  auto model = make_convnet();
  install_random_hybrid_masks(*model, 8, 2, 4, 1);
  Rng xrng(5);
  const Tensor x = Tensor::randn({3, 3, 8, 8}, xrng);
  const Tensor dense_out = nn::predict(*model, x);

  auto packed = std::make_shared<const deploy::PackedModel>(
      deploy::PackedModel::pack(*model, 8, 2, 4));
  auto compiled = CompiledModel::compile(model, packed);
  EXPECT_TRUE(compiled->has_packed());
  EXPECT_EQ(compiled->packed_layers().size(), packed->entries().size());
  // Same multiplications in a different accumulation order.
  EXPECT_LE(max_abs_diff(dense_out, compiled->run(x)), 1e-4f);
}

TEST(CompiledModel, KeepsArtifactAndModelAlive) {
  Tensor x = random_sample(5, {2, 3, 8, 8});
  Tensor want;
  std::shared_ptr<const CompiledModel> compiled;
  {
    auto model = make_convnet();
    install_random_hybrid_masks(*model, 8, 2, 4, 1);
    auto packed = std::make_shared<const deploy::PackedModel>(
        deploy::PackedModel::pack(*model, 8, 2, 4));
    compiled = CompiledModel::compile(model, packed);
    want = compiled->run(x);
  }
  // Every external reference is gone; the compiled artifact still serves.
  EXPECT_FLOAT_EQ(max_abs_diff(want, compiled->run(x)), 0.0f);
}

// Regression for the historical attach_packed lifetime hazard: the hooks
// used to hold raw pointers into the caller's PackedModel, so destroying
// it left the model dangling. That wrapper is gone; the supported path is
// a CompiledModel whose hooks co-own their kernels via aliasing
// shared_ptrs, so every caller-side handle — the model, the artifact, the
// individual kernel list — may die right after compile.
TEST(PackedExecLifetime, CompiledModelSurvivesHandleDestruction) {
  Tensor x = random_sample(5, {2, 3, 8, 8});
  Tensor want;
  std::shared_ptr<const CompiledModel> compiled;
  {
    auto model = make_convnet();
    install_random_hybrid_masks(*model, 8, 2, 4, 1);
    want = nn::predict(*model, x);
    auto packed = std::make_shared<const deploy::PackedModel>(
        deploy::PackedModel::pack(*model, 8, 2, 4));
    std::vector<deploy::NamedKernel> kernels;
    for (const deploy::PackedEntry& e : packed->entries())
      kernels.push_back({e.name, std::shared_ptr<const kernels::SpmmKernel>(
                                     packed, &e.matrix)});
    compiled = CompiledModel::compile_with_kernels(model, kernels);
    packed.reset();  // only the hooks' aliasing references remain
  }
  EXPECT_LE(max_abs_diff(want, compiled->run(x)), 1e-4f);
}

TEST(CompiledModel, QuantizedCompileBuildsPrivateInt8Artifact) {
  auto model = make_mlp();
  install_random_hybrid_masks(*model, 8, 2, 4, 1);
  auto packed = std::make_shared<const deploy::PackedModel>(
      deploy::PackedModel::pack(*model, 8, 2, 4));
  ASSERT_FALSE(packed->quantized());

  serve::CompileOptions opts;
  opts.quantize_payload = true;
  auto compiled = CompiledModel::compile(model, packed, opts);
  EXPECT_TRUE(compiled->quantized());
  EXPECT_EQ(compiled->packed_layers().size(), packed->entries().size());
  // The caller's artifact stays fp32; the compile hooked a private copy
  // whose payload is a quarter of the fp32 bytes plus the scales.
  EXPECT_FALSE(packed->quantized());
  ASSERT_NE(compiled->packed(), nullptr);
  EXPECT_LT(compiled->packed()->stats().packed_payload_bits,
            packed->stats().packed_payload_bits / 2);

  // Regression: a keep_fp32 artifact is quantized() but still *executes*
  // fp32 (spmm prefers the fp32 slots), so compile must still build an
  // int8-only copy — and a compile without the option must not report
  // quantized serving.
  auto keep_model = make_mlp();
  auto keep_both = std::make_shared<deploy::PackedModel>(
      deploy::PackedModel::pack(*model, 8, 2, 4));
  keep_both->quantize_payloads(/*keep_fp32=*/true);
  ASSERT_TRUE(keep_both->quantized());
  ASSERT_FALSE(keep_both->serves_int8());
  auto keep_compiled = CompiledModel::compile(keep_model, keep_both, opts);
  EXPECT_TRUE(keep_compiled->quantized());
  ASSERT_NE(keep_compiled->packed(), nullptr);
  EXPECT_TRUE(keep_compiled->packed()->serves_int8());

  auto plain_model = make_mlp();
  auto plain = CompiledModel::compile(plain_model, keep_both);
  EXPECT_FALSE(plain->quantized());  // hooks run the fp32 slots
}

// The tentpole invariant for quantized serving: an int8 engine's outputs
// equal the dense forward of the *dequantized* weights within kernel
// rounding (dequantize-on-the-fly == dequantize-up-front), stay within the
// propagated quantization error of the fp32 engine, and are bit-identical
// across kernel thread counts.
TEST(Engine, QuantizedEngineParityWithFp32Engine) {
  auto model = make_mlp();
  install_random_hybrid_masks(*model, 8, 2, 4, 1);
  auto packed = std::make_shared<const deploy::PackedModel>(
      deploy::PackedModel::pack(*model, 8, 2, 4));
  auto fp32_compiled = CompiledModel::compile(model, packed);

  // A second model instance for the quantized compile (hooks are installed
  // on the nn graph, so each compiled artifact needs its own).
  auto qmodel = make_mlp();
  install_random_hybrid_masks(*qmodel, 8, 2, 4, 1);
  serve::CompileOptions qopts;
  qopts.quantize_payload = true;
  auto q_compiled = CompiledModel::compile(qmodel, packed, qopts);
  ASSERT_TRUE(q_compiled->quantized());

  // Dense reference of the dequantized weights: unpack the quantized
  // artifact into a third model instance.
  auto dq_model = make_mlp();
  ASSERT_NE(q_compiled->packed(), nullptr);
  q_compiled->packed()->unpack_into(*dq_model);

  constexpr int kRequests = 24;
  ThreadGuard guard;
  std::vector<Tensor> outputs_at_threads;
  for (const int threads : {1, 2, 8}) {
    kernels::set_num_threads(threads);
    EngineOptions opts;
    opts.max_batch = 8;
    opts.flush_timeout = std::chrono::microseconds(2000);
    // Both engines serve concurrently from the same request stream.
    Engine fp32_engine(fp32_compiled);
    Engine q_engine(q_compiled, opts);

    std::vector<std::future<Response>> ffp, fq;
    for (int i = 0; i < kRequests; ++i) {
      const Tensor sample =
          random_sample(static_cast<std::uint64_t>(4000 + i), {32});
      ffp.push_back(fp32_engine.submit(sample));
      fq.push_back(q_engine.submit(sample));
    }

    Tensor stacked({kRequests, 8});
    for (int i = 0; i < kRequests; ++i) {
      const Tensor sample =
          random_sample(static_cast<std::uint64_t>(4000 + i), {32});
      const Tensor qout = fq[static_cast<std::size_t>(i)].get().output;
      const Tensor fout = ffp[static_cast<std::size_t>(i)].get().output;

      // (a) Exact against the dequantized-weights forward (kernel rounding
      // only — the engine batches, the reference runs B=1).
      const Tensor want = nn::predict(*dq_model, sample.reshaped({1, 32}))
                              .reshaped({8});
      ASSERT_TRUE(qout.same_shape(want));
      EXPECT_LE(max_abs_diff(qout, want), 1e-4f)
          << "request " << i << " at " << threads << " threads";

      // (b) Sanity: quantization moved the output by a bounded, small
      // amount relative to the fp32 engine (weights are O(1), scales are
      // O(1/127); anything past this indicates a broken scale).
      EXPECT_LE(max_abs_diff(qout, fout), 1.0f) << "request " << i;

      std::memcpy(stacked.data() + i * 8, qout.data(), 8 * sizeof(float));
    }
    outputs_at_threads.push_back(std::move(stacked));
  }

  // (c) Bit-identical across 1/2/8 kernel threads.
  for (std::size_t t = 1; t < outputs_at_threads.size(); ++t)
    EXPECT_FLOAT_EQ(
        max_abs_diff(outputs_at_threads[0], outputs_at_threads[t]), 0.0f)
        << "quantized serve output changed with the thread count";
}

TEST(Engine, SingleRequestMatchesSerial) {
  auto compiled = CompiledModel::compile(make_convnet());
  Engine engine(compiled);
  const Tensor sample = random_sample(11, {3, 8, 8});
  Response r = engine.submit(sample).get();
  const Tensor want = serial_reference(*compiled, sample);
  ASSERT_TRUE(r.output.same_shape(want));
  EXPECT_FLOAT_EQ(max_abs_diff(r.output, want), 0.0f);
  EXPECT_GE(r.stats.batch_size, 1);
  EXPECT_GE(r.stats.run_time.count(), 0);
}

TEST(Engine, ConcurrentProducersBitIdenticalToSerial) {
  auto compiled = CompiledModel::compile(make_convnet());
  EngineOptions opts;
  opts.max_batch = 8;
  opts.flush_timeout = std::chrono::microseconds(2000);
  Engine engine(compiled, opts);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 16;
  std::vector<std::vector<std::future<Response>>> futures(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        futures[static_cast<std::size_t>(p)].push_back(engine.submit(
            random_sample(static_cast<std::uint64_t>(100 + p * 1000 + i),
                          {3, 8, 8})));
      }
    });
  }
  for (auto& t : producers) t.join();

  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kPerProducer; ++i) {
      Response r = futures[static_cast<std::size_t>(p)]
                       [static_cast<std::size_t>(i)].get();
      const Tensor want = serial_reference(
          *compiled, random_sample(
                         static_cast<std::uint64_t>(100 + p * 1000 + i),
                         {3, 8, 8}));
      ASSERT_TRUE(r.output.same_shape(want));
      EXPECT_FLOAT_EQ(max_abs_diff(r.output, want), 0.0f)
          << "producer " << p << " request " << i << " diverged in a batch of "
          << r.stats.batch_size;
    }
  }

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.requests, kProducers * kPerProducer);
  EXPECT_GE(s.batches, 1);
  EXPECT_LE(s.max_batch, opts.max_batch);
  EXPECT_GE(s.occupancy(), 1.0);
}

TEST(Engine, MixedShapeRequestsAreGroupedNotDropped) {
  auto compiled = CompiledModel::compile(make_convnet());
  EngineOptions opts;
  opts.max_batch = 8;
  opts.flush_timeout = std::chrono::microseconds(2000);
  Engine engine(compiled, opts);

  const Shape shapes[] = {{3, 8, 8}, {3, 10, 10}, {3, 6, 12}};
  std::vector<std::future<Response>> futures;
  std::vector<Tensor> samples;
  for (int i = 0; i < 24; ++i) {
    samples.push_back(random_sample(static_cast<std::uint64_t>(500 + i),
                                    shapes[i % 3]));
    futures.push_back(engine.submit(samples.back()));
  }
  for (int i = 0; i < 24; ++i) {
    Response r = futures[static_cast<std::size_t>(i)].get();
    const Tensor want = serial_reference(*compiled, samples[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(r.output.same_shape(want));
    EXPECT_FLOAT_EQ(max_abs_diff(r.output, want), 0.0f) << "request " << i;
  }
}

TEST(Engine, PackedModelServesWithinKernelRounding) {
  auto model = make_mlp();
  install_random_hybrid_masks(*model, 8, 2, 4, 1);
  auto packed = std::make_shared<const deploy::PackedModel>(
      deploy::PackedModel::pack(*model, 8, 2, 4));
  auto compiled = CompiledModel::compile(model, packed);
  ASSERT_EQ(compiled->packed_layers().size(), 2u);

  EngineOptions opts;
  opts.max_batch = 8;
  opts.flush_timeout = std::chrono::microseconds(2000);
  opts.thread_budget = 1;
  Engine engine(compiled, opts);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 32; ++i)
    futures.push_back(
        engine.submit(random_sample(static_cast<std::uint64_t>(900 + i), {32})));
  for (int i = 0; i < 32; ++i) {
    Response r = futures[static_cast<std::size_t>(i)].get();
    const Tensor want = serial_reference(
        *compiled,
        random_sample(static_cast<std::uint64_t>(900 + i), {32}));
    ASSERT_TRUE(r.output.same_shape(want));
    // The packed Linear hook vectorizes over the batch column, so the
    // B=1 reference and the batched run may differ by FMA contraction.
    EXPECT_LE(max_abs_diff(r.output, want), 1e-5f) << "request " << i;
  }
}

TEST(Engine, RejectPolicyThrowsAtFullQueue) {
  auto compiled = CompiledModel::compile(make_convnet());
  EngineOptions opts;
  opts.max_batch = 1;  // one request per forward
  opts.queue_depth = 2;
  opts.flush_timeout = std::chrono::microseconds(0);
  opts.overflow = EngineOptions::Overflow::kReject;
  Engine engine(compiled, opts);

  // A heavyweight first request keeps the worker busy for milliseconds
  // while microsecond-scale submits flood the bounded queue behind it, so
  // a rejection is guaranteed long before the backlog drains.
  std::vector<std::future<Response>> futures;
  futures.push_back(engine.submit(random_sample(1, {3, 192, 192})));
  bool rejected = false;
  for (int i = 0; i < 64 && !rejected; ++i) {
    try {
      futures.push_back(engine.submit(
          random_sample(static_cast<std::uint64_t>(10 + i), {3, 8, 8})));
    } catch (const std::runtime_error&) {
      rejected = true;
    }
  }
  EXPECT_TRUE(rejected);
  EXPECT_GE(engine.stats().rejected, 1);
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

TEST(Engine, BlockPolicyAbsorbsBursts) {
  auto compiled = CompiledModel::compile(make_mlp());
  EngineOptions opts;
  opts.max_batch = 4;
  opts.queue_depth = 2;
  opts.flush_timeout = std::chrono::microseconds(100);
  opts.overflow = EngineOptions::Overflow::kBlock;
  Engine engine(compiled, opts);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 20; ++i)
    futures.push_back(
        engine.submit(random_sample(static_cast<std::uint64_t>(i), {32})));
  for (int i = 0; i < 20; ++i) {
    Response r = futures[static_cast<std::size_t>(i)].get();
    const Tensor want = serial_reference(
        *compiled, random_sample(static_cast<std::uint64_t>(i), {32}));
    EXPECT_FLOAT_EQ(max_abs_diff(r.output, want), 0.0f) << "request " << i;
  }
  EXPECT_EQ(engine.stats().requests, 20);
  EXPECT_EQ(engine.stats().rejected, 0);
}

TEST(Engine, ShutdownDrainsInFlightWork) {
  auto compiled = CompiledModel::compile(make_mlp());
  EngineOptions opts;
  opts.max_batch = 4;
  opts.flush_timeout = std::chrono::milliseconds(50);
  Engine engine(compiled, opts);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 12; ++i)
    futures.push_back(
        engine.submit(random_sample(static_cast<std::uint64_t>(i), {32})));
  engine.shutdown();

  for (int i = 0; i < 12; ++i) {
    Response r = futures[static_cast<std::size_t>(i)].get();  // must not hang
    const Tensor want = serial_reference(
        *compiled, random_sample(static_cast<std::uint64_t>(i), {32}));
    EXPECT_FLOAT_EQ(max_abs_diff(r.output, want), 0.0f) << "request " << i;
  }
  EXPECT_THROW(engine.submit(random_sample(99, {32})), std::runtime_error);
  EXPECT_EQ(engine.stats().requests, 12);
}

// Destroying an engine while a kBlock producer is parked inside submit()
// must wake the producer (it throws) and wait for it to leave the
// engine's internals before they are freed.
TEST(Engine, ShutdownReleasesBlockedSubmitters) {
  auto compiled = CompiledModel::compile(make_convnet());
  EngineOptions opts;
  opts.max_batch = 1;
  opts.queue_depth = 1;
  opts.flush_timeout = std::chrono::microseconds(0);
  opts.overflow = EngineOptions::Overflow::kBlock;

  std::vector<std::future<Response>> futures;
  std::int64_t completed = 0, refused = 0;
  {
    Engine engine(compiled, opts);
    // Heavy head request keeps the worker busy; the queue behind it fills.
    futures.push_back(engine.submit(random_sample(1, {3, 192, 192})));
    std::thread producer([&] {
      for (int i = 0; i < 4; ++i) {
        try {
          futures.push_back(engine.submit(
              random_sample(static_cast<std::uint64_t>(20 + i), {3, 8, 8})));
        } catch (const std::runtime_error&) {
          ++refused;  // woken by shutdown while parked (or submitted after)
        }
      }
    });
    engine.shutdown();  // races the producer on purpose
    producer.join();
  }  // engine destroyed; any parked producer must already be gone

  for (auto& f : futures) {
    EXPECT_NO_THROW(f.get());  // accepted requests were all served
    ++completed;
  }
  EXPECT_EQ(completed + refused, 5);
}

TEST(Engine, BadShapeRequestFailsItsFutureOnly) {
  auto compiled = CompiledModel::compile(make_mlp());
  EngineOptions opts;
  opts.flush_timeout = std::chrono::microseconds(0);
  Engine engine(compiled, opts);

  auto bad = engine.submit(random_sample(1, {7}));  // fc1 wants 32 features
  auto good = engine.submit(random_sample(2, {32}));
  EXPECT_THROW(bad.get(), std::exception);
  EXPECT_NO_THROW(good.get());
}

// Two thread-budgeted engines sharing one CompiledModel: concurrent
// forward_eval on the same frozen layers, each engine's pool usage pinned.
TEST(Engine, TwoEnginesShareOneCompiledModel) {
  auto model = make_convnet();
  install_random_hybrid_masks(*model, 8, 2, 4, 1);
  auto packed = std::make_shared<const deploy::PackedModel>(
      deploy::PackedModel::pack(*model, 8, 2, 4));
  auto compiled = CompiledModel::compile(model, packed);

  EngineOptions opts;
  opts.max_batch = 4;
  opts.flush_timeout = std::chrono::microseconds(500);
  opts.thread_budget = 1;
  Engine a(compiled, opts);
  Engine b(compiled, opts);

  std::vector<std::future<Response>> fa, fb;
  std::thread ta([&] {
    for (int i = 0; i < 16; ++i)
      fa.push_back(a.submit(
          random_sample(static_cast<std::uint64_t>(3000 + i), {3, 8, 8})));
  });
  std::thread tb([&] {
    for (int i = 0; i < 16; ++i)
      fb.push_back(b.submit(
          random_sample(static_cast<std::uint64_t>(3000 + i), {3, 8, 8})));
  });
  ta.join();
  tb.join();

  for (int i = 0; i < 16; ++i) {
    const Tensor want = serial_reference(
        *compiled,
        random_sample(static_cast<std::uint64_t>(3000 + i), {3, 8, 8}));
    const Tensor got_a = fa[static_cast<std::size_t>(i)].get().output;
    const Tensor got_b = fb[static_cast<std::size_t>(i)].get().output;
    // Conv hooks run per sample, so even the packed path is bit-stable
    // against the serial reference here; both engines must agree exactly.
    EXPECT_LE(max_abs_diff(got_a, want), 1e-5f) << "engine a, request " << i;
    EXPECT_FLOAT_EQ(max_abs_diff(got_a, got_b), 0.0f) << "request " << i;
  }
}

}  // namespace
}  // namespace crisp::serve
