// Shard persistence and fault-injection tests: the crash-safety story of
// docs/persistence.md, proven the exhaustive way.
//
// The corruption matrix mirrors the discipline the CRSPDELT stream reader
// set (truncation at every byte): a shard is truncated at *every* byte
// offset, every record's body takes a CRC-breaking flip, saves and appends
// are torn at every byte by the failpoint registry — and in every case
// recovery keeps exactly the committed prefix, with zero crashes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/block_pruning.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "tenant/shard.h"
#include "tenant/store.h"
#include "testing/fault_injection.h"

namespace crisp::tenant {
namespace {

using core::install_random_hybrid_masks;
using crisp::testing::arm_fault;
using crisp::testing::arm_fault_spec;
using crisp::testing::fault_arg;
using crisp::testing::fault_hits;
using crisp::testing::reset_faults;
using crisp::testing::should_fail;

constexpr std::int64_t kBlock = 8, kN = 2, kM = 4;

std::string temp_path(const std::string& stem) {
  return std::string(::testing::TempDir()) + stem;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.is_open()) << path;
  std::ostringstream buf(std::ios::binary);
  buf << is.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(os.is_open()) << path;
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::shared_ptr<nn::Sequential> make_mlp() {
  Rng rng(9);
  auto model = std::make_shared<nn::Sequential>("shardmlp");
  model->emplace<nn::Linear>("fc1", 32, 24, rng);
  model->emplace<nn::ReLU>("relu");
  model->emplace<nn::Linear>("fc2", 24, 8, rng);
  return model;
}

/// A structurally alien architecture, for the foreign-delta test: records
/// written against it parse fine but can never validate against the MLP.
std::shared_ptr<nn::Sequential> make_convnet() {
  Rng rng(7);
  auto model = std::make_shared<nn::Sequential>("shardnet");
  nn::Conv2dSpec c1;
  c1.in_channels = 3;
  c1.out_channels = 16;
  c1.kernel = 3;
  c1.padding = 1;
  model->emplace<nn::Conv2d>("conv1", c1, rng);
  model->emplace<nn::ReLU>("relu1");
  model->emplace<nn::GlobalAvgPool>("gap");
  model->emplace<nn::Flatten>("flatten");
  model->emplace<nn::Linear>("fc", 16, 8, rng);
  return model;
}

std::shared_ptr<const BaseArtifact> make_base(const ModelFactory& factory) {
  std::shared_ptr<nn::Sequential> model = factory();
  install_random_hybrid_masks(*model, kBlock, kN, kM, 0);
  deploy::PackedModel packed =
      deploy::PackedModel::pack(*model, kBlock, kN, kM);
  return BaseArtifact::create(
      std::make_shared<const deploy::PackedModel>(std::move(packed)));
}

/// Zeroes one surviving block per block-row, selected by `salt` — distinct
/// salts model distinct tenants (same construction as test_tenant.cpp).
void drop_one_block_per_row(nn::Sequential& model, std::uint64_t salt) {
  for (nn::Parameter* p : model.prunable_parameters()) {
    if (!p->has_mask()) continue;
    const std::int64_t rows = p->matrix_rows, cols = p->matrix_cols;
    const std::int64_t grid_rows = (rows + kBlock - 1) / kBlock;
    const std::int64_t grid_cols = (cols + kBlock - 1) / kBlock;
    float* mask = p->mask.data();
    for (std::int64_t br = 0; br < grid_rows; ++br) {
      const std::int64_t r0 = br * kBlock, r1 = std::min(rows, r0 + kBlock);
      std::vector<std::int64_t> survivors;
      for (std::int64_t bc = 0; bc < grid_cols; ++bc) {
        const std::int64_t c0 = bc * kBlock, c1 = std::min(cols, c0 + kBlock);
        bool live = false;
        for (std::int64_t r = r0; r < r1 && !live; ++r)
          for (std::int64_t c = c0; c < c1; ++c)
            if (mask[r * cols + c] != 0.0f) {
              live = true;
              break;
            }
        if (live) survivors.push_back(bc);
      }
      ASSERT_FALSE(survivors.empty());
      const std::int64_t bc = survivors[static_cast<std::size_t>(
          (salt + static_cast<std::uint64_t>(br)) % survivors.size())];
      const std::int64_t c0 = bc * kBlock, c1 = std::min(cols, c0 + kBlock);
      for (std::int64_t r = r0; r < r1; ++r)
        for (std::int64_t c = c0; c < c1; ++c) mask[r * cols + c] = 0.0f;
    }
  }
}

MaskDelta tenant_delta(const BaseArtifact& base, const ModelFactory& factory,
                       std::uint64_t salt) {
  std::shared_ptr<nn::Sequential> model = factory();
  install_random_hybrid_masks(*model, kBlock, kN, kM, 0);
  drop_one_block_per_row(*model, salt);
  return MaskDelta::from_model(base, *model);
}

std::string delta_stream(const MaskDelta& d) {
  std::ostringstream os(std::ios::binary);
  d.write(os);
  return os.str();
}

std::vector<std::pair<std::string, std::shared_ptr<const MaskDelta>>>
make_fleet(const BaseArtifact& base, int n) {
  std::vector<std::pair<std::string, std::shared_ptr<const MaskDelta>>> recs;
  for (int i = 0; i < n; ++i)
    recs.emplace_back(
        "tenant" + std::to_string(i),
        std::make_shared<const MaskDelta>(
            tenant_delta(base, make_mlp, static_cast<std::uint64_t>(i))));
  return recs;
}

class ShardTest : public ::testing::Test {
 protected:
  void TearDown() override { reset_faults(); }
};

// ---- failpoint registry -----------------------------------------------------

TEST_F(ShardTest, FaultRegistryNthTimesSemantics) {
  reset_faults();
  EXPECT_FALSE(should_fail("unit.site"));  // unarmed: never fires
  EXPECT_NO_THROW(crisp::testing::maybe_fail("unit.site"));
  arm_fault("unit.site", /*nth=*/2, /*times=*/3, /*arg=*/42);
  EXPECT_EQ(fault_arg("unit.site"), 42);
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(should_fail("unit.site"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, true, false,
                                      false, false}));
  EXPECT_EQ(fault_hits("unit.site"), 8);

  arm_fault("unit.forever", 0, /*times=*/-1);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(should_fail("unit.forever"));
  crisp::testing::disarm_fault("unit.forever");
  EXPECT_FALSE(should_fail("unit.forever"));

  // Re-arming resets the hit counter: the schedule replays from zero.
  arm_fault("unit.site", 2, 3, 42);
  EXPECT_EQ(fault_hits("unit.site"), 0);
  EXPECT_FALSE(should_fail("unit.site"));
}

TEST_F(ShardTest, FaultRegistryMaybeFailAndSpecs) {
  reset_faults();
  arm_fault_spec("unit.spec:1:2:7");
  EXPECT_FALSE(should_fail("unit.spec"));  // hit 0 < nth
  EXPECT_EQ(fault_arg("unit.spec"), 7);
  EXPECT_THROW(crisp::testing::maybe_fail("unit.spec"), std::runtime_error);
  EXPECT_THROW(crisp::testing::maybe_fail("unit.spec"), std::runtime_error);
  EXPECT_NO_THROW(crisp::testing::maybe_fail("unit.spec"));  // times spent
  EXPECT_THROW(arm_fault_spec("nocolon"), std::runtime_error);
  EXPECT_THROW(arm_fault_spec("site:abc"), std::runtime_error);
  EXPECT_THROW(arm_fault_spec("site:1:2:3:4"), std::runtime_error);
}

// ---- round trip and append --------------------------------------------------

TEST_F(ShardTest, WriteScanRoundTripIsCleanAndDeterministic) {
  auto base = make_base(make_mlp);
  auto recs = make_fleet(*base, 5);
  const std::string path = temp_path("roundtrip.shard");
  write_shard(path, recs);

  ShardScanResult scan = scan_shard(path);
  EXPECT_TRUE(scan.report.clean());
  ASSERT_EQ(scan.report.records, 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(scan.records[static_cast<std::size_t>(i)].tenant_id,
              recs[static_cast<std::size_t>(i)].first);
    EXPECT_EQ(delta_stream(scan.records[static_cast<std::size_t>(i)].delta),
              delta_stream(*recs[static_cast<std::size_t>(i)].second));
  }

  // Same records -> byte-identical file (atomic replace, deterministic
  // serialization); no stale temp file left behind.
  const std::string first = read_file(path);
  write_shard(path, recs);
  EXPECT_EQ(read_file(path), first);
  EXPECT_FALSE(std::ifstream(path + ".tmp").is_open());
  std::remove(path.c_str());
}

TEST_F(ShardTest, AppendCreatesAndExtends) {
  auto base = make_base(make_mlp);
  const std::string path = temp_path("append.shard");
  std::remove(path.c_str());
  append_shard(path, "a", tenant_delta(*base, make_mlp, 1));  // creates
  append_shard(path, "b", tenant_delta(*base, make_mlp, 2));
  ShardScanResult scan = scan_shard(path);
  EXPECT_TRUE(scan.report.clean());
  ASSERT_EQ(scan.report.records, 2);
  EXPECT_EQ(scan.records[0].tenant_id, "a");
  EXPECT_EQ(scan.records[1].tenant_id, "b");
  std::remove(path.c_str());
}

TEST_F(ShardTest, ScanRejectsNonShardsAndMissingFiles) {
  const std::string path = temp_path("notashard.bin");
  write_file(path, std::string("this is not a shard, full stop."));
  EXPECT_THROW(scan_shard(path), std::runtime_error);
  EXPECT_THROW(scan_shard(temp_path("no_such.shard")), std::runtime_error);
  // Wrong version in an otherwise valid header: refuse, don't "recover".
  auto base = make_base(make_mlp);
  const std::string shard = temp_path("badver.shard");
  write_shard(shard, make_fleet(*base, 1));
  std::string bytes = read_file(shard);
  bytes[8] = static_cast<char>(bytes[8] + 1);
  write_file(shard, bytes);
  EXPECT_THROW(scan_shard(shard), std::runtime_error);
  std::remove(path.c_str());
  std::remove(shard.c_str());
}

// ---- the corruption matrix --------------------------------------------------

TEST_F(ShardTest, TruncationAtEveryByteKeepsEveryCommittedRecord) {
  auto base = make_base(make_mlp);
  auto recs = make_fleet(*base, 3);
  const std::string path = temp_path("trunc.shard");
  write_shard(path, recs);
  const std::string full = read_file(path);

  // Record boundaries, reconstructed from frame lengths (header is 12
  // bytes, frame header 8).
  std::vector<std::int64_t> boundaries{12};
  {
    std::int64_t off = 12;
    while (off < static_cast<std::int64_t>(full.size())) {
      std::uint32_t len;
      std::memcpy(&len, full.data() + off, sizeof(len));
      off += 8 + static_cast<std::int64_t>(len);
      boundaries.push_back(off);
    }
  }
  ASSERT_EQ(boundaries.size(), 4u);  // header + 3 records

  const std::string cut = temp_path("trunc_cut.shard");
  for (std::size_t L = 0; L <= full.size(); ++L) {
    write_file(cut, full.substr(0, L));
    // Committed records = boundaries fully below the cut.
    std::int64_t expect = 0;
    for (std::size_t b = 1; b < boundaries.size(); ++b)
      if (boundaries[b] <= static_cast<std::int64_t>(L)) ++expect;
    if (L < 12) {
      // Header torn: an empty shard with the stub reported dropped.
      ShardScanResult scan = scan_shard(cut);
      EXPECT_EQ(scan.report.records, 0) << "L=" << L;
      EXPECT_EQ(scan.report.dropped_bytes, static_cast<std::int64_t>(L))
          << "L=" << L;
      continue;
    }
    ShardScanResult scan = scan_shard(cut, /*repair=*/true);
    EXPECT_EQ(scan.report.records, expect) << "L=" << L;
    EXPECT_EQ(scan.good_bytes, boundaries[static_cast<std::size_t>(expect)])
        << "L=" << L;
    EXPECT_EQ(scan.report.crc_failures, 0) << "L=" << L;
    // Repair truncated the torn tail: the file now rescans clean and
    // extends by append.
    ShardScanResult again = scan_shard(cut);
    EXPECT_TRUE(again.report.clean()) << "L=" << L;
    EXPECT_EQ(again.report.records, expect) << "L=" << L;
  }
  // After the worst repair (everything torn), the log still grows.
  write_file(cut, full.substr(0, 13));
  scan_shard(cut, /*repair=*/true);
  append_shard(cut, "postrepair", tenant_delta(*base, make_mlp, 9));
  ShardScanResult regrown = scan_shard(cut);
  EXPECT_TRUE(regrown.report.clean());
  ASSERT_EQ(regrown.report.records, 1);
  EXPECT_EQ(regrown.records[0].tenant_id, "postrepair");
  std::remove(path.c_str());
  std::remove(cut.c_str());
}

TEST_F(ShardTest, CrcMismatchOnEachRecordKeepsThePrefix) {
  auto base = make_base(make_mlp);
  auto recs = make_fleet(*base, 3);
  const std::string path = temp_path("flip.shard");
  write_shard(path, recs);
  const std::string full = read_file(path);

  std::vector<std::int64_t> starts{12};
  while (true) {
    std::uint32_t len;
    std::memcpy(&len, full.data() + starts.back(), sizeof(len));
    const std::int64_t next = starts.back() + 8 + len;
    if (next >= static_cast<std::int64_t>(full.size())) break;
    starts.push_back(next);
  }
  ASSERT_EQ(starts.size(), 3u);

  const std::string hurt = temp_path("flip_hurt.shard");
  for (std::size_t r = 0; r < starts.size(); ++r) {
    std::string bytes = full;
    // Flip a bit mid-body of record r (past the 8-byte frame header).
    bytes[static_cast<std::size_t>(starts[r] + 8 + 16)] ^=
        static_cast<char>(0x10);
    write_file(hurt, bytes);
    ShardScanResult scan = scan_shard(hurt);
    EXPECT_EQ(scan.report.records, static_cast<std::int64_t>(r)) << "r=" << r;
    EXPECT_EQ(scan.report.crc_failures, 1) << "r=" << r;
    EXPECT_GT(scan.report.dropped_bytes, 0) << "r=" << r;
  }
  std::remove(path.c_str());
  std::remove(hurt.c_str());
}

TEST_F(ShardTest, DuplicateTenantIdLastWriteWins) {
  auto base = make_base(make_mlp);
  const std::string path = temp_path("dups.shard");
  write_shard(path, make_fleet(*base, 2));
  const MaskDelta replacement = tenant_delta(*base, make_mlp, 77);
  append_shard(path, "tenant0", replacement);

  Store store(base, make_mlp);
  ShardLoadReport rep = store.load_shard(path);
  EXPECT_TRUE(rep.scan.clean());
  EXPECT_EQ(rep.loaded, 3);        // every record registered, in order
  EXPECT_EQ(rep.quarantined, 0);
  EXPECT_EQ(store.tenant_count(), 2);  // ...but ids collapse, last wins

  // The surviving delta is the appended one: saving the store re-emits it.
  const std::string out = temp_path("dups_out.shard");
  store.save_shard(out);
  ShardScanResult scan = scan_shard(out);
  ASSERT_EQ(scan.report.records, 2);
  EXPECT_EQ(scan.records[0].tenant_id, "tenant0");
  EXPECT_EQ(delta_stream(scan.records[0].delta), delta_stream(replacement));
  std::remove(path.c_str());
  std::remove(out.c_str());
}

// ---- kill-during-save / torn writes via fault injection ---------------------

TEST_F(ShardTest, TornSaveAtEveryByteLeavesPreviousGenerationIntact) {
  auto base = make_base(make_mlp);
  const std::string path = temp_path("tornsave.shard");
  write_shard(path, make_fleet(*base, 2));  // generation 1
  const std::string gen1 = read_file(path);

  auto gen2 = make_fleet(*base, 3);
  const std::string probe = temp_path("tornsave_probe.shard");
  write_shard(probe, gen2);
  const std::size_t image_size = read_file(probe).size();
  std::remove(probe.c_str());

  for (std::size_t k = 0; k < image_size; ++k) {
    arm_fault("shard.save.torn", 0, 1, static_cast<std::int64_t>(k));
    EXPECT_THROW(write_shard(path, gen2), std::runtime_error) << "k=" << k;
    // The crash hit the temp file; the shard itself never changed.
    EXPECT_EQ(read_file(path), gen1) << "k=" << k;
  }
  reset_faults();
  ShardScanResult scan = scan_shard(path);
  EXPECT_TRUE(scan.report.clean());
  EXPECT_EQ(scan.report.records, 2);

  // And the save succeeds once the fault clears.
  write_shard(path, gen2);
  EXPECT_EQ(scan_shard(path).report.records, 3);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST_F(ShardTest, CrashBeforeRenameLeavesPreviousGenerationIntact) {
  auto base = make_base(make_mlp);
  const std::string path = temp_path("prerename.shard");
  write_shard(path, make_fleet(*base, 2));
  const std::string gen1 = read_file(path);

  arm_fault("shard.save.before_rename");
  EXPECT_THROW(write_shard(path, make_fleet(*base, 3)), std::runtime_error);
  reset_faults();
  EXPECT_EQ(read_file(path), gen1);  // fully-written temp, never renamed
  EXPECT_EQ(scan_shard(path).report.records, 2);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST_F(ShardTest, TornAppendAtEveryByteRecoversAndRegrows) {
  auto base = make_base(make_mlp);
  const std::string path = temp_path("tornappend.shard");
  const std::string work = temp_path("tornappend_work.shard");
  write_shard(path, make_fleet(*base, 2));
  const std::string committed = read_file(path);
  const MaskDelta extra = tenant_delta(*base, make_mlp, 5);

  // Frame size of the appended record: append once cleanly and measure.
  write_file(work, committed);
  append_shard(work, "extra", extra);
  const std::int64_t frame_bytes =
      static_cast<std::int64_t>(read_file(work).size() - committed.size());
  ASSERT_GT(frame_bytes, 8);

  for (std::int64_t k = 0; k < frame_bytes; ++k) {
    write_file(work, committed);
    arm_fault("shard.append.torn", 0, 1, k);
    EXPECT_THROW(append_shard(work, "extra", extra), std::runtime_error)
        << "k=" << k;
    reset_faults();
    // Recovery: both committed records survive, the torn tail goes, and
    // the log keeps growing afterwards — kill-at-any-byte, zero loss.
    ShardScanResult scan = scan_shard(work, /*repair=*/true);
    EXPECT_EQ(scan.report.records, 2) << "k=" << k;
    EXPECT_EQ(scan.report.dropped_bytes, k) << "k=" << k;
    append_shard(work, "extra", extra);
    EXPECT_EQ(scan_shard(work).report.records, 3) << "k=" << k;
  }
  std::remove(path.c_str());
  std::remove(work.c_str());
}

// ---- Store::save_shard / load_shard -----------------------------------------

TEST_F(ShardTest, StoreFleetSurvivesSaveAndLoad) {
  auto base = make_base(make_mlp);
  auto store = std::make_shared<Store>(base, make_mlp);
  auto recs = make_fleet(*base, 6);
  for (const auto& [id, delta] : recs) store->register_tenant(id, *delta);
  const std::int64_t deltas_before = store->resident_bytes().deltas;

  const std::string path = temp_path("fleet.shard");
  EXPECT_EQ(store->save_shard(path), 6);

  Store restored(base, make_mlp);
  ShardLoadReport rep = restored.load_shard(path);
  EXPECT_TRUE(rep.scan.clean());
  EXPECT_EQ(rep.loaded, 6);
  EXPECT_EQ(rep.quarantined, 0);
  EXPECT_EQ(restored.tenant_count(), 6);
  // Byte-exact accounting carries across the restart: same deltas, same
  // resident-bytes identity.
  EXPECT_EQ(restored.resident_bytes().deltas, deltas_before);
  for (const auto& [id, delta] : recs) EXPECT_TRUE(restored.has_tenant(id));
  std::remove(path.c_str());
}

TEST_F(ShardTest, LoadShardQuarantinesDeltasForeignToTheBase) {
  // A record written against a structurally different base parses fine
  // (its CRC holds) but fails validation on load — contained, counted,
  // and the rest of the fleet loads anyway.
  auto base = make_base(make_mlp);
  auto foreign_base = make_base(make_convnet);
  const std::string path = temp_path("foreign.shard");
  write_shard(path, make_fleet(*base, 2));
  append_shard(path, "foreigner",
               tenant_delta(*foreign_base, make_convnet, 3));

  Store store(base, make_mlp);
  ShardLoadReport rep = store.load_shard(path);
  EXPECT_TRUE(rep.scan.clean());
  EXPECT_EQ(rep.loaded, 2);
  EXPECT_EQ(rep.quarantined, 1);
  EXPECT_EQ(store.tenant_count(), 2);
  EXPECT_FALSE(store.has_tenant("foreigner"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace crisp::tenant
