// Registry-wide criterion battery.
//
// Every registered saliency criterion — including ones registered at
// runtime — must (a) produce bit-identical scores at 1, 2, and 8 threads
// (the repo's determinism contract on the parallel_for/deterministic_reduce
// substrate) and (b) rank sanely: scaling all weights of a block up scales
// that block's score monotonically for every weight-dependent criterion.
// Plus the registry mechanics (unknown names throw and list the menu,
// custom registration works, "auto" is rejected by estimate_saliency but
// resolved by the selector), the frozen-layer skip contract, and the
// loss-aware auto-selector's determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "core/criterion_select.h"
#include "core/saliency.h"
#include "data/class_pattern.h"
#include "data/dataset.h"
#include "kernels/parallel_for.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/models/common.h"
#include "nn/sequential.h"
#include "sparse/block.h"
#include "thread_guard.h"

namespace crisp::core {
namespace {

using crisp::testing::ThreadGuard;

float max_diff(const Tensor& a, const Tensor& b) {
  EXPECT_TRUE(a.same_shape(b));
  float m = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

data::TrainTest tiny_split() {
  data::ClassPatternConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.image_size = 8;
  dcfg.train_per_class = 8;
  dcfg.test_per_class = 2;
  return data::make_class_pattern_dataset(dcfg);
}

std::unique_ptr<nn::Sequential> tiny_conv_model() {
  nn::ModelConfig mcfg;
  mcfg.num_classes = 4;
  mcfg.input_size = 8;
  mcfg.width_mult = 0.125f;
  return nn::make_vgg16(mcfg);
}

SaliencyMap scores_at(int threads, const data::Dataset& calib,
                      const std::string& criterion) {
  kernels::set_num_threads(threads);
  auto model = tiny_conv_model();
  SaliencyConfig cfg;
  cfg.criterion = criterion;
  cfg.batch_size = 8;
  cfg.max_batches = 2;
  return estimate_saliency(*model, calib, cfg);
}

// (a) Bit-identity at 1/2/8 threads — for EVERY registered criterion, so a
// future registration is covered the moment it lands.
TEST(Criteria, EveryRegisteredCriterionThreadInvariant) {
  ThreadGuard guard;
  const data::TrainTest split = tiny_split();
  for (const std::string& name : criterion_names()) {
    const SaliencyMap serial = scores_at(1, split.train, name);
    for (const int t : {2, 8}) {
      const SaliencyMap threaded = scores_at(t, split.train, name);
      ASSERT_EQ(serial.size(), threaded.size());
      for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(max_diff(serial[i], threaded[i]), 0.0f)
            << "criterion '" << name << "', parameter " << i << ", " << t
            << " threads";
    }
  }
}

// (b) Ranking sanity: multiplying all weights of one block by g > 1 must
// not DECREASE that block's aggregate score for any weight-dependent
// criterion (strictly increase for the built-ins). "random" is exempt: its
// scores are weight-independent by design.
TEST(Criteria, ScalingABlockScalesItsScoreMonotonically) {
  const std::int64_t block = 4, rows = 8;
  const std::int64_t cols = 48;  // 3 channels x 4 x 4, flattened
  const std::int64_t target_r = 1, target_c = 2;  // block-grid coordinates
  const sparse::BlockGrid grid{rows, cols, block};

  const data::TrainTest split = [] {
    data::ClassPatternConfig c;
    c.num_classes = 4;
    c.image_size = 4;
    c.train_per_class = 8;
    c.test_per_class = 2;
    return data::make_class_pattern_dataset(c);
  }();

  for (const std::string& name : criterion_names()) {
    if (name == "random") continue;  // weight-independent by design
    auto block_score = [&](float gain) {
      Rng rng(11);
      nn::Sequential model("m");
      model.emplace<nn::Flatten>("flat");
      auto& hid = model.emplace<nn::Linear>("hid", cols, rows, rng);
      model.emplace<nn::ReLU>("relu");
      model.emplace<nn::Linear>("out", rows, 4, rng);
      // Scale the target block's weights of the hidden layer.
      nn::Parameter& w = hid.weight();
      for (std::int64_t r = target_r * block; r < (target_r + 1) * block; ++r)
        for (std::int64_t c = target_c * block; c < (target_c + 1) * block;
             ++c)
          w.value[r * cols + c] *= gain;
      SaliencyConfig cfg;
      cfg.criterion = name;
      cfg.batch_size = 8;
      cfg.max_batches = 2;
      const SaliencyMap scores = estimate_saliency(model, split.train, cfg);
      const Tensor bs = sparse::block_scores(
          as_matrix(scores[0], rows, cols), grid);
      return bs[target_r * grid.grid_cols() + target_c];
    };
    const float base = block_score(1.0f);
    const float scaled = block_score(2.0f);
    const float more = block_score(4.0f);
    EXPECT_GT(scaled, base) << "criterion '" << name << "'";
    EXPECT_GT(more, scaled) << "criterion '" << name << "'";
  }
}

// Registry mechanics.
TEST(Criteria, UnknownNameThrowsAndListsMenu) {
  auto model = tiny_conv_model();
  const data::TrainTest split = tiny_split();
  SaliencyConfig cfg;
  cfg.criterion = "no-such-criterion";
  try {
    estimate_saliency(*model, split.train, cfg);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-criterion"), std::string::npos);
    EXPECT_NE(msg.find("cass"), std::string::npos);  // menu is listed
  }
}

TEST(Criteria, AutoIsRejectedByEstimateSaliency) {
  auto model = tiny_conv_model();
  const data::TrainTest split = tiny_split();
  SaliencyConfig cfg;
  cfg.criterion = "auto";
  EXPECT_THROW(estimate_saliency(*model, split.train, cfg),
               std::runtime_error);
}

TEST(Criteria, RuntimeRegistrationIsServedAndCovered) {
  // A custom criterion registered at runtime is immediately selectable by
  // name and shows up in criterion_names() (so the thread-invariance test
  // above would cover it too).
  class Constant final : public SaliencyCriterion {
   public:
    const char* name() const override { return "test-constant"; }
    bool needs_gradients() const override { return false; }
    SaliencyMap compute(nn::Sequential& model, const data::Dataset&,
                        const SaliencyConfig&,
                        const std::vector<std::uint8_t>& active) override {
      auto params = model.prunable_parameters();
      SaliencyMap scores(params.size());
      for (std::size_t i = 0; i < params.size(); ++i)
        if (active.empty() || active[i] != 0)
          scores[i] = Tensor::ones(params[i]->value.shape());
      return scores;
    }
  };
  register_criterion("test-constant", [] {
    return std::unique_ptr<SaliencyCriterion>(new Constant());
  });
  EXPECT_TRUE(has_criterion("test-constant"));
  const auto names = criterion_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test-constant"),
            names.end());

  auto model = tiny_conv_model();
  data::Dataset empty;
  SaliencyConfig cfg;
  cfg.criterion = "test-constant";
  const SaliencyMap scores = estimate_saliency(*model, empty, cfg);
  for (const Tensor& s : scores) {
    ASSERT_GT(s.numel(), 0);
    EXPECT_EQ(s.min(), 1.0f);
    EXPECT_EQ(s.max(), 1.0f);
  }
}

// The frozen-layer skip contract: inactive layers come back as empty
// tensors and active layers' scores are unchanged by the bitmask.
TEST(Criteria, ActiveBitmaskSkipsExactlyTheFrozenLayers) {
  const data::TrainTest split = tiny_split();
  for (const std::string& name : criterion_names()) {
    auto model = tiny_conv_model();
    auto params = model->prunable_parameters();
    ASSERT_GE(params.size(), 2u);
    SaliencyConfig cfg;
    cfg.criterion = name;
    cfg.batch_size = 8;
    cfg.max_batches = 2;

    std::vector<std::uint8_t> active(params.size(), 1);
    active[0] = 0;
    const SaliencyMap partial =
        estimate_saliency(*model, split.train, cfg, active);
    EXPECT_EQ(partial[0].numel(), 0) << name;
    for (std::size_t i = 1; i < partial.size(); ++i)
      EXPECT_GT(partial[i].numel(), 0) << name << " layer " << i;

    // Same model, full sweep: the active layers' scores must be identical
    // (the skip must not perturb what IS computed). Gradient-based sweeps
    // advance BatchNorm statistics, so compare on a fresh model.
    auto model2 = tiny_conv_model();
    const SaliencyMap full = estimate_saliency(*model2, split.train, cfg);
    for (std::size_t i = 1; i < partial.size(); ++i)
      EXPECT_EQ(max_diff(partial[i], full[i]), 0.0f)
          << name << " layer " << i;
  }
}

// estimate_saliency_selected composes per-layer criteria and honors the
// empty-name (frozen) sentinel.
TEST(Criteria, SelectedCompositionMatchesPerCriterionRuns) {
  const data::TrainTest split = tiny_split();
  auto model = tiny_conv_model();
  auto params = model->prunable_parameters();
  ASSERT_GE(params.size(), 3u);
  SaliencyConfig cfg;
  cfg.batch_size = 8;
  cfg.max_batches = 2;

  std::vector<std::string> per_layer(params.size(), "magnitude");
  per_layer[1] = "";  // frozen
  const SaliencyMap sel =
      estimate_saliency_selected(*model, split.train, cfg, per_layer);
  EXPECT_EQ(sel[1].numel(), 0);

  cfg.criterion = "magnitude";
  auto model2 = tiny_conv_model();
  const SaliencyMap mag = estimate_saliency(*model2, split.train, cfg);
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i == 1) continue;
    EXPECT_EQ(max_diff(sel[i], mag[i]), 0.0f) << "layer " << i;
  }
}

// The loss-aware auto-selector: deterministic, restores the model exactly,
// and the assignment is thread-count independent.
TEST(Criteria, AutoSelectorDeterministicAndRestoresModel) {
  ThreadGuard guard;
  const data::TrainTest split = tiny_split();

  auto run = [&](int threads) {
    kernels::set_num_threads(threads);
    auto model = tiny_conv_model();
    AutoSelectConfig cfg;
    cfg.candidates = {"cass", "lasso", "taylor"};
    cfg.saliency.batch_size = 8;
    cfg.saliency.max_batches = 2;
    cfg.batch_size = 8;
    const TensorMap before = model->state_dict();
    const AutoSelection sel = auto_select_criteria(*model, split.train, cfg);
    const TensorMap after = model->state_dict();
    EXPECT_EQ(before.size(), after.size());
    for (const auto& [name, t] : before) {
      auto it = after.find(name);
      EXPECT_NE(it, after.end()) << name;
      if (it != after.end())
        EXPECT_EQ(max_diff(t, it->second), 0.0f) << name;
    }
    return sel;
  };

  const AutoSelection serial = run(1);
  ASSERT_FALSE(serial.per_layer.empty());
  for (const std::string& choice : serial.per_layer)
    EXPECT_NE(std::find(serial.candidates.begin(), serial.candidates.end(),
                        choice),
              serial.candidates.end());
  const AutoSelection again = run(1);
  EXPECT_EQ(serial.per_layer, again.per_layer);
  const AutoSelection threaded = run(8);
  EXPECT_EQ(serial.per_layer, threaded.per_layer);
}

}  // namespace
}  // namespace crisp::core
