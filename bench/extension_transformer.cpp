// Extension — CRISP on a transformer (the paper's future work, §V:
// "We plan to extend these results to transformer-based architectures").
//
// A small ViT is pre-trained on the synthetic 100-class distribution, then
// personalized to 10 user classes with the unchanged CRISP pruner: the
// attention projections and MLP weights are ordinary S x K matrices, so the
// hybrid N:M + uniform-block pattern applies as-is.
#include <filesystem>

#include "common.h"
#include "nn/models/transformer.h"

using namespace crisp;

int main() {
  bench::print_header("extension_transformer — CRISP on a ViT",
                      "§V future work (transformer architectures)");

  // Pre-train a small ViT on all classes (cached like the zoo models).
  nn::VitConfig vcfg;
  vcfg.num_classes = 100;
  vcfg.input_size = 16;
  vcfg.patch = 4;
  vcfg.dim = 32;
  vcfg.heads = 4;
  vcfg.depth = 4;
  data::ClassPatternConfig dcfg = data::ClassPatternConfig::cifar100_like();
  dcfg.image_size = 16;
  dcfg.train_per_class = 16;
  dcfg.test_per_class = 8;
  const data::TrainTest split = data::make_class_pattern_dataset(dcfg);

  auto model = nn::make_vit(vcfg);
  const std::string cache =
      nn::zoo_cache_dir() + "/vit_cifar100like_d32x4.bin";
  if (is_tensor_file(cache)) {
    model->load_state_dict(load_tensors(cache));
    std::printf("loaded cached ViT weights\n");
  } else {
    nn::TrainConfig tc;
    tc.epochs = bench::fast_mode() ? 8 : 16;
    tc.batch_size = 32;
    tc.sgd.lr = 0.01f;  // transformers want a gentler rate than the CNNs
    tc.lr_decay = 0.95f;
    tc.verbose = true;
    Rng rng(1);
    nn::train(*model, split.train, tc, rng);
    std::filesystem::create_directories(nn::zoo_cache_dir());
    save_tensors(model->state_dict(), cache);
  }
  const float dense_all = nn::evaluate(*model, split.test);
  std::printf("dense ViT accuracy over all 100 classes: %.1f%%\n",
              100 * dense_all);
  const TensorMap snapshot = model->state_dict();

  Rng crng(11);
  const auto classes = data::sample_user_classes(100, 10, crng);
  const data::Dataset user_train = data::filter_classes(split.train, classes);
  const data::Dataset user_test = data::filter_classes(split.test, classes);

  std::printf("\n%-22s %10s %10s %10s\n", "configuration", "accuracy",
              "sparsity", "flops");
  {
    Rng rng(2);
    const float dense_ft = bench::dense_finetune_accuracy(
        *model, user_train, user_test, classes, rng);
    std::printf("%-22s %9.1f%% %9.1f%% %10.3f\n", "dense fine-tune", 100 * dense_ft,
                0.0, 1.0);
  }
  for (double kappa : {0.75, 0.85, 0.90}) {
    bench::restore(*model, snapshot);
    core::CrispConfig cfg = bench::bench_crisp_config(kappa, 2, 4, 8);
    cfg.finetune_sgd.lr = 0.01f;
    Rng rng(3);
    core::CrispPruner pruner(*model, cfg);
    const core::PruneReport report = pruner.run(user_train, rng);
    const float acc = nn::evaluate(*model, user_test, 64, classes);
    const double flops = bench::flops_ratio(*model, vcfg.input_size);
    char label[32];
    std::snprintf(label, sizeof label, "crisp kappa=%.2f", kappa);
    std::printf("%-22s %9.1f%% %9.1f%% %10.3f\n", label, 100 * acc,
                100 * report.achieved_sparsity(), flops);
  }
  std::printf("\nexpected: the CRISP recipe transfers — high user-class "
              "accuracy at 85-90%% sparsity on attention/MLP weights\n");
  return 0;
}
