// Fig. 2 — "Layer-wise sparsity distribution".
//
// CRISP's global rank-column selection assigns *non-uniform* sparsity to
// layers: some prune to ~99 % while others stay nearly dense, with every
// layer internally keeping an equal number of blocks per row.
#include <algorithm>

#include "common.h"

using namespace crisp;

int main() {
  bench::print_header("fig2_layer_sparsity — per-layer sparsity after CRISP",
                      "Fig. 2 (layer-wise sparsity distribution)");

  const nn::ZooSpec spec =
      bench::bench_spec(nn::ModelKind::kResNet50, nn::DatasetKind::kCifar100Like);
  nn::PretrainedModel pm = nn::zoo_pretrained(spec, /*verbose=*/true);

  Rng crng(11);
  const auto classes = data::sample_user_classes(pm.data.train.num_classes,
                                                 10, crng);
  const data::Dataset user_train = data::filter_classes(pm.data.train, classes);

  const core::CrispConfig cfg = bench::bench_crisp_config(0.90, 2, 4, 16);
  core::CrispPruner pruner(*pm.model, cfg);
  Rng rng(3);
  const core::PruneReport report = pruner.run(user_train, rng);

  std::printf("\nglobal sparsity: %.1f%% (target %.1f%%)\n",
              100 * report.achieved_sparsity(), 100 * cfg.target_sparsity);
  std::printf("%-26s %6s %6s %10s %8s %8s\n", "layer", "S", "K", "sparsity",
              "K'", "uniform");
  for (const auto& l : report.census.layers)
    std::printf("%-26s %6lld %6lld %9.1f%% %8lld %8s\n", l.name.c_str(),
                static_cast<long long>(l.rows), static_cast<long long>(l.cols),
                100 * l.sparsity, static_cast<long long>(l.k_prime),
                l.uniform_rows ? "yes" : "NO");

  std::int64_t extreme = 0;
  double min_sp = 1.0, max_sp = 0.0;
  for (const auto& l : report.census.layers) {
    extreme += (l.sparsity >= 0.95);
    min_sp = std::min(min_sp, l.sparsity);
    max_sp = std::max(max_sp, l.sparsity);
  }
  std::printf("\nlayers at >=95%% sparsity: %lld of %zu | per-layer range "
              "%.1f%% .. %.1f%%\n",
              static_cast<long long>(extreme), report.census.layers.size(),
              100 * min_sp, 100 * max_sp);
  std::printf("paper shape: wide non-uniform spread with some layers near "
              "99%% while global target stays %.0f%%\n",
              100 * cfg.target_sparsity);
  return 0;
}
