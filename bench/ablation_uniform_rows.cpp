// Ablation — the equal-blocks-per-row constraint (§III-C).
//
// CRISP prunes the same number of blocks from every block-row so hardware
// lanes stay balanced. The alternative — unconstrained global top-k block
// pruning — may pick slightly better blocks but leaves rows with wildly
// different work, which a lock-step SIMD fabric pays for at the speed of
// its fullest row. We measure both the accuracy difference and the
// imbalance penalty (max-row work / mean-row work per layer).
#include <algorithm>
#include <vector>

#include "common.h"
#include "core/nm_pruning.h"
#include "sparse/block.h"

using namespace crisp;

namespace {

/// Unconstrained baseline: globally rank individual blocks (layer-fraction
/// normalised) and prune the lowest until the element budget is met.
std::vector<Tensor> unconstrained_block_masks(
    nn::Sequential& model, const core::SaliencyMap& saliency,
    double element_fraction) {
  auto params = model.prunable_parameters();
  struct Block {
    double score;
    std::size_t layer;
    std::int64_t br, bc;
    std::int64_t cost;
  };
  std::vector<Block> blocks;
  std::vector<Tensor> grids;
  std::vector<sparse::BlockGrid> geoms;
  std::int64_t total = 0;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const nn::Parameter& p = *params[i];
    sparse::BlockGrid g{p.matrix_rows, p.matrix_cols, 16};
    Tensor scores = sparse::block_scores(
        as_matrix(saliency[i], p.matrix_rows, p.matrix_cols), g);
    const double layer_total = std::max<double>(scores.sum(), 1e-30);
    for (std::int64_t br = 0; br < g.grid_rows(); ++br)
      for (std::int64_t bc = 0; bc < g.grid_cols(); ++bc)
        blocks.push_back({scores[br * g.grid_cols() + bc] / layer_total, i, br,
                          bc, g.block * g.block});
    total += p.matrix_rows * p.matrix_cols;
    grids.push_back(Tensor::ones({g.grid_rows(), g.grid_cols()}));
    geoms.push_back(g);
  }
  std::stable_sort(blocks.begin(), blocks.end(),
                   [](const Block& a, const Block& b) {
                     return a.score < b.score;
                   });
  double removed = 0.0;
  const double target = static_cast<double>(total) * element_fraction;
  for (const Block& b : blocks) {
    if (removed >= target) break;
    grids[b.layer][b.br * geoms[b.layer].grid_cols() + b.bc] = 0.0f;
    removed += static_cast<double>(b.cost);
  }
  std::vector<Tensor> masks;
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor m = sparse::expand_block_mask(grids[i], geoms[i]);
    m.reshape_inplace(params[i]->value.shape());
    masks.push_back(std::move(m));
  }
  return masks;
}

/// Worst-case lane imbalance over layers: max-row non-zero blocks divided
/// by mean — the slowdown of a lock-step fabric relative to balanced work.
double imbalance_penalty(nn::Sequential& model) {
  double worst = 1.0;
  for (nn::Parameter* p : model.prunable_parameters()) {
    const sparse::BlockGrid g{p->matrix_rows, p->matrix_cols, 16};
    const auto zero_counts = sparse::zero_blocks_per_row(
        as_matrix(p->mask, p->matrix_rows, p->matrix_cols), g);
    double mx = 0.0, sum = 0.0;
    for (const auto z : zero_counts) {
      const double live = static_cast<double>(g.grid_cols() - z);
      mx = std::max(mx, live);
      sum += live;
    }
    const double mean = sum / static_cast<double>(zero_counts.size());
    if (mean > 0) worst = std::max(worst, mx / mean);
  }
  return worst;
}

}  // namespace

int main() {
  bench::print_header(
      "ablation_uniform_rows — equal blocks-per-row vs unconstrained",
      "§III-C (uniform block pruning for workload balance)");

  const nn::ZooSpec spec =
      bench::bench_spec(nn::ModelKind::kResNet50, nn::DatasetKind::kCifar100Like);
  nn::PretrainedModel pm = nn::zoo_pretrained(spec, /*verbose=*/true);
  const TensorMap snapshot = pm.model->state_dict();

  Rng crng(11);
  const auto classes = data::sample_user_classes(pm.data.train.num_classes,
                                                 10, crng);
  const data::Dataset user_train = data::filter_classes(pm.data.train, classes);
  const data::Dataset user_test = data::filter_classes(pm.data.test, classes);
  const double kappa = 0.90;

  // --- CRISP (uniform rows) -----------------------------------------------
  core::CrispConfig cfg = bench::bench_crisp_config(kappa);
  Rng r1(8);
  core::CrispPruner pruner(*pm.model, cfg);
  core::PruneReport report = pruner.run(user_train, r1);
  const float uniform_acc = nn::evaluate(*pm.model, user_test, 64, classes);
  const double uniform_imbalance = imbalance_penalty(*pm.model);

  // --- Unconstrained global block pruning ----------------------------------
  bench::restore(*pm.model, snapshot);
  Rng r2(8);
  // Same N:M step and budget, but free-form block selection.
  core::SparsitySchedule sched{kappa, 1, cfg.n, cfg.m};
  core::SaliencyConfig scfg;
  const core::SaliencyMap saliency =
      core::estimate_saliency(*pm.model, user_train, scfg);
  const auto nm_masks = core::select_nm_masks(*pm.model, saliency, cfg.n, cfg.m);
  const auto block_masks = unconstrained_block_masks(
      *pm.model, saliency, sched.block_fraction_at(1));
  core::install_masks(*pm.model, nm_masks, block_masks);
  nn::TrainConfig rec;
  rec.epochs = cfg.finetune_epochs * cfg.iterations + cfg.recovery_epochs;
  rec.batch_size = 32;
  rec.sgd.lr = 0.02f;
  rec.lr_decay = 0.92f;
  nn::train(*pm.model, user_train, rec, r2);
  const float free_acc = nn::evaluate(*pm.model, user_test, 64, classes);
  const double free_imbalance = imbalance_penalty(*pm.model);
  const double free_sparsity =
      core::take_census(*pm.model, cfg.block).global_sparsity;

  std::printf("\n%-22s %10s %10s %22s\n", "variant", "accuracy", "sparsity",
              "lane imbalance (max)");
  std::printf("%-22s %9.1f%% %9.1f%% %21.2fx\n", "uniform rows (CRISP)",
              100 * uniform_acc, 100 * report.achieved_sparsity(),
              uniform_imbalance);
  std::printf("%-22s %9.1f%% %9.1f%% %21.2fx\n", "unconstrained top-k",
              100 * free_acc, 100 * free_sparsity, free_imbalance);
  std::printf("\nexpected: comparable accuracy, but the unconstrained "
              "variant leaves rows imbalanced — real silicon runs at the "
              "speed of the fullest row (paper cites [17])\n");
  return 0;
}
