// Ablation — recovery objective: plain CE fine-tuning (the paper's choice)
// vs knowledge distillation from the dense universal model (the MyML-style
// alternative the related work uses for user-driven personalization).
//
// Same pruning run, same epoch budget, same data; only the recovery loss
// differs. KD's value shows where the paper's setting is data-poor: with
// 256 samples per class the hard labels carry enough signal that CE keeps
// up; as the per-class budget shrinks, the teacher's dark knowledge starts
// paying. Both columns are printed across user-data budgets.
#include "common.h"
#include "nn/distill.h"

using namespace crisp;

int main() {
  bench::print_header(
      "ablation_distill — CE vs knowledge-distillation recovery",
      "design choice in §III-B/related work [5] (recovery objective)");

  const nn::ZooSpec spec = bench::bench_spec(nn::ModelKind::kResNet50,
                                             nn::DatasetKind::kCifar100Like);
  nn::PretrainedModel pm = nn::zoo_pretrained(spec, /*verbose=*/true);
  const TensorMap snapshot = pm.model->state_dict();

  // A frozen copy of the dense universal model serves as the teacher.
  auto teacher = nn::make_model(spec.model, spec.model_config());
  teacher->load_state_dict(snapshot);

  Rng crng(11);
  const auto classes =
      data::sample_user_classes(pm.data.train.num_classes, 10, crng);
  const data::Dataset user_test = data::filter_classes(pm.data.test, classes);
  const data::Dataset user_train_full =
      data::filter_classes(pm.data.train, classes);

  const double kappa = 0.90;
  const std::vector<std::int64_t> budgets =
      bench::fast_mode() ? std::vector<std::int64_t>{4, 16}
                         : std::vector<std::int64_t>{2, 4, 8, 16};

  std::printf("\nResNet-50, 10 user classes, kappa %.0f%%, 2:4 B=16\n",
              100 * kappa);
  std::printf("%-18s %12s %12s\n", "samples/class", "CE recovery",
              "KD recovery");

  for (const std::int64_t budget : budgets) {
    const data::Dataset user_train =
        data::take_per_class(user_train_full, budget);

    auto prune_without_recovery = [&]() {
      bench::restore(*pm.model, snapshot);
      core::CrispConfig cfg = bench::bench_crisp_config(kappa);
      cfg.recovery_epochs = 0;
      Rng rng(4);
      core::CrispPruner pruner(*pm.model, cfg);
      pruner.run(user_train, rng);
      return bench::bench_crisp_config(kappa).recovery_epochs;
    };

    // CE recovery.
    const std::int64_t recovery_epochs = prune_without_recovery();
    {
      nn::TrainConfig tc;
      tc.epochs = recovery_epochs;
      tc.batch_size = 32;
      tc.sgd.lr = 0.02f;
      tc.lr_decay = 0.92f;
      Rng rng(5);
      nn::train(*pm.model, user_train, tc, rng);
    }
    const float ce_acc = nn::evaluate(*pm.model, user_test, 64, classes);

    // KD recovery with the identical budget.
    prune_without_recovery();
    {
      nn::DistillConfig dc;
      dc.base.epochs = recovery_epochs;
      dc.base.batch_size = 32;
      dc.base.sgd.lr = 0.02f;
      dc.base.lr_decay = 0.92f;
      dc.alpha = 0.5f;
      dc.temperature = 2.0f;
      Rng rng(5);
      nn::distill_train(*pm.model, *teacher, user_train, dc, rng);
    }
    const float kd_acc = nn::evaluate(*pm.model, user_test, 64, classes);

    std::printf("%-18lld %11.1f%% %11.1f%%\n",
                static_cast<long long>(budget), 100 * ce_acc, 100 * kd_acc);
  }

  std::printf("\nexpected shape: KD >= CE at small per-class budgets; the "
              "two converge as user data grows\n");
  return 0;
}
