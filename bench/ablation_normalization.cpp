// Ablation — cross-layer score normalization for the global rank-column
// sort (Algorithm 1, line 8).
//
// The paper sorts rank-column scores "globally across the network" without
// fixing a scale. Raw sums let wide layers dominate; per-element means let
// high-gradient layers starve the rest; the layer-fraction scale (default)
// prunes by the share of a layer's saliency a column carries.
#include <algorithm>

#include "common.h"

using namespace crisp;

int main() {
  bench::print_header(
      "ablation_normalization — rank-column score scales",
      "Algorithm 1 line 8 (global sort; paper leaves the scale open)");

  const nn::ZooSpec spec =
      bench::bench_spec(nn::ModelKind::kResNet50, nn::DatasetKind::kCifar100Like);
  nn::PretrainedModel pm = nn::zoo_pretrained(spec, /*verbose=*/true);
  const TensorMap snapshot = pm.model->state_dict();

  Rng crng(11);
  const auto classes = data::sample_user_classes(pm.data.train.num_classes,
                                                 10, crng);
  const data::Dataset user_train = data::filter_classes(pm.data.train, classes);
  const data::Dataset user_test = data::filter_classes(pm.data.test, classes);

  struct Mode {
    core::BlockScoreNorm norm;
    const char* label;
  };
  const Mode modes[] = {
      {core::BlockScoreNorm::kNone, "raw-sum"},
      {core::BlockScoreNorm::kMeanPerElement, "per-element"},
      {core::BlockScoreNorm::kLayerFraction, "layer-fraction"},
  };

  std::printf("\n%-16s %10s %10s %16s %16s\n", "normalization", "accuracy",
              "sparsity", "max layer sp.", "layers >=99%");
  for (const Mode& mode : modes) {
    bench::restore(*pm.model, snapshot);
    core::CrispConfig cfg = bench::bench_crisp_config(0.90);
    cfg.block_pruning.norm = mode.norm;
    Rng rng(7);
    core::CrispPruner pruner(*pm.model, cfg);
    const core::PruneReport report = pruner.run(user_train, rng);
    const float acc = nn::evaluate(*pm.model, user_test, 64, classes);
    std::int64_t extreme = 0;
    for (const auto& l : report.census.layers) extreme += (l.sparsity >= 0.99);
    std::printf("%-16s %9.1f%% %9.1f%% %15.1f%% %16lld\n", mode.label,
                100 * acc, 100 * report.achieved_sparsity(),
                100 * report.census.max_layer_sparsity(),
                static_cast<long long>(extreme));
  }
  std::printf("\nexpected: layer-fraction keeps accuracy while still "
              "allowing non-uniform (Fig. 2-style) layer sparsity\n");
  return 0;
}
