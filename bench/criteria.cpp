// Criterion ablation bench: the saliency registry, timed and gated.
//
// Sweeps every registered saliency criterion over a small trained conv
// model — per-criterion sweep time plus a serial-vs-threaded bit-identity
// audit (the determinism contract every criterion signs up to) — then runs
// the loss-aware auto-selector and reports its per-layer assignment.
//
// JSON (--json PATH) is google-benchmark-shaped so tools/compare_bench.py
// gates it against the committed BENCH_criteria.json. Gated entries (a
// baseline of 0 is an exact must-stay-0 gate — see docs/benchmarks.md):
//   Criteria/ablation/gate_thread_mismatch    criteria whose threaded scores
//                                             differ from serial in any bit
//   Criteria/ablation/gate_auto_single_criterion  0 when the auto-selector
//                                             chose >= 2 distinct criteria
//                                             across layers, 1 otherwise
// Everything else (per-criterion sweep ms, auto-selection ms, distinct
// count, layer count) is informational.
//
// Usage:
//   bench_criteria [--classes C] [--image N] [--threads T] [--seed S]
//                  [--json PATH] [--quiet]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/criterion_select.h"
#include "core/saliency.h"
#include "data/class_pattern.h"
#include "kernels/parallel_for.h"
#include "nn/models/common.h"
#include "nn/trainer.h"

namespace {

using namespace crisp;
using Clock = std::chrono::steady_clock;

float max_diff(const Tensor& a, const Tensor& b) {
  float m = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

void json_entry(std::FILE* f, bool* first, const std::string& name,
                double value) {
  std::fprintf(f, "%s\n    {\"name\": \"%s\", \"run_name\": \"%s\", "
               "\"run_type\": \"iteration\", \"iterations\": 1, "
               "\"real_time\": %.4f, \"cpu_time\": %.4f, "
               "\"time_unit\": \"us\"}",
               *first ? "" : ",", name.c_str(), name.c_str(), value, value);
  *first = false;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t classes = 6;
  std::int64_t image = 8;
  int threads = 4;
  std::uint64_t seed = 42;
  std::string json_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "criteria: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--classes") classes = std::atoll(next());
    else if (arg == "--image") image = std::atoll(next());
    else if (arg == "--threads") threads = std::atoi(next());
    else if (arg == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--json") json_path = next();
    else if (arg == "--quiet") quiet = true;
    else {
      std::fprintf(stderr, "criteria: unknown argument %s (see header)\n",
                   arg.c_str());
      return 2;
    }
  }

  data::ClassPatternConfig dcfg = data::ClassPatternConfig::cifar100_like();
  dcfg.num_classes = classes;
  dcfg.image_size = image;
  dcfg.train_per_class = 16;
  dcfg.test_per_class = 4;
  const data::TrainTest split = data::make_class_pattern_dataset(dcfg);

  nn::ModelConfig mcfg;
  mcfg.num_classes = classes;
  mcfg.input_size = image;
  mcfg.width_mult = 0.25f;
  auto model = nn::make_vgg16(mcfg);

  // A briefly, gently trained model: criteria only disagree interestingly
  // once gradients carry class signal, but the validation loss must stay
  // OUT of the cross-entropy clamp (a saturated loss ties every probe and
  // the auto-selector degenerates to its first candidate).
  nn::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 16;
  tc.sgd.lr = 0.01f;
  Rng rng(seed);
  nn::train(*model, split.train, tc, rng);

  core::SaliencyConfig scfg;
  scfg.batch_size = 16;
  scfg.max_batches = 4;

  // ---- per-criterion sweep + bit-identity audit -----------------------------
  const std::vector<std::string> names = core::criterion_names();
  std::vector<double> sweep_ms(names.size(), 0.0);
  std::int64_t thread_mismatch = 0;
  // Gradient sweeps advance BatchNorm running statistics, so both runs of
  // each criterion start from the same snapshotted state.
  const TensorMap snapshot = model->state_dict();
  for (std::size_t c = 0; c < names.size(); ++c) {
    scfg.criterion = names[c];

    kernels::set_num_threads(1);
    model->load_state_dict(snapshot);
    const core::SaliencyMap serial =
        core::estimate_saliency(*model, split.train, scfg);

    kernels::set_num_threads(threads);
    model->load_state_dict(snapshot);
    const Clock::time_point t0 = Clock::now();
    const core::SaliencyMap threaded =
        core::estimate_saliency(*model, split.train, scfg);
    sweep_ms[c] =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

    bool mismatch = false;
    for (std::size_t i = 0; i < threaded.size(); ++i)
      if (max_diff(threaded[i], serial[i]) != 0.0f) mismatch = true;
    thread_mismatch += mismatch;
    if (!quiet)
      std::printf("criterion %-12s  sweep %7.2f ms  threads %d  %s\n",
                  names[c].c_str(), sweep_ms[c], threads,
                  mismatch ? "MISMATCH" : "bit-identical");
  }

  // ---- the loss-aware auto-selector -----------------------------------------
  model->load_state_dict(snapshot);
  kernels::set_num_threads(threads);
  core::AutoSelectConfig acfg;
  acfg.saliency = scfg;
  acfg.saliency.criterion = "cass";
  acfg.batch_size = 16;
  const Clock::time_point t0 = Clock::now();
  const core::AutoSelection sel =
      core::auto_select_criteria(*model, split.test, acfg);
  const double auto_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  const std::int64_t distinct = sel.distinct_chosen();
  if (!quiet) {
    std::printf("auto-selector      %.2f ms over %zu layers, %lld distinct "
                "criteria chosen\n",
                auto_ms, sel.per_layer.size(),
                static_cast<long long>(distinct));
    for (std::size_t i = 0; i < sel.per_layer.size(); ++i) {
      std::printf("  layer %2zu -> %-10s", i, sel.per_layer[i].c_str());
      for (std::size_t c = 0; c < sel.candidates.size(); ++c)
        std::printf("  %s=%.6f", sel.candidates[c].c_str(),
                    sel.loss_increase[c][i]);
      std::printf("\n");
    }
  }

  const std::int64_t auto_single = distinct >= 2 ? 0 : 1;

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "criteria: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"context\": {\"executable\": \"bench_criteria\", "
                 "\"seed\": %llu},\n  \"benchmarks\": [",
                 static_cast<unsigned long long>(seed));
    bool first = true;
    const std::string b = "Criteria/ablation/";
    // Gated entries: both record 0, so compare_bench.py holds them at
    // exactly 0 forever.
    json_entry(f, &first, b + "gate_thread_mismatch",
               static_cast<double>(thread_mismatch));
    json_entry(f, &first, b + "gate_auto_single_criterion",
               static_cast<double>(auto_single));
    // Informational entries.
    json_entry(f, &first, b + "layers",
               static_cast<double>(sel.per_layer.size()));
    json_entry(f, &first, b + "auto_distinct_chosen",
               static_cast<double>(distinct));
    json_entry(f, &first, b + "auto_select_ms", auto_ms);
    for (std::size_t c = 0; c < names.size(); ++c)
      json_entry(f, &first, b + "sweep_ms_" + names[c], sweep_ms[c]);
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }
  return thread_mismatch == 0 && auto_single == 0 ? 0 : 1;
}
