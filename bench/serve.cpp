// Serving benchmarks (google-benchmark, linked into bench_kernels so the
// entries land in the same JSON the CI regression gate reads): sequential
// single-sample nn::predict loops versus the batched serve::Engine on
// identical weights and an identical request stream, dense and packed.
//
// The acceptance bar for the engine: batched throughput (requests/s at
// batch >= 8) must beat the sequential loop on the same host. Each engine
// entry also reports p50/p95 request latency (queue + run) and batch
// occupancy as counters. threads:1 entries are the stable ones CI gates;
// the threads:4 entries document scaling and depend on the runner.
// examples/serve_bench.cpp is the narrated twin of this scenario — keep
// the model shape, mask recipe, and engine options in lockstep.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <future>
#include <memory>
#include <vector>

#include "core/block_pruning.h"
#include "deploy/packed_model.h"
#include "kernels/parallel_for.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "serve/engine.h"

namespace {

using namespace crisp;

constexpr std::int64_t kIn = 256, kHidden = 512, kClasses = 100;
constexpr std::int64_t kStream = 64;  ///< requests per measured iteration

void serve_threads(benchmark::internal::Benchmark* b) {
  b->ArgName("threads");
  b->UseRealTime();  // wall clock: worker + pool threads are the product
  for (const int t : {1, 4}) b->Arg(t);
}

std::shared_ptr<nn::Sequential> serve_mlp() {
  Rng rng(7);
  auto model = std::make_shared<nn::Sequential>("servemlp");
  model->emplace<nn::Linear>("fc1", kIn, kHidden, rng);
  model->emplace<nn::ReLU>("relu1");
  model->emplace<nn::Linear>("fc2", kHidden, kHidden, rng);
  model->emplace<nn::ReLU>("relu2");
  model->emplace<nn::Linear>("fc3", kHidden, kClasses, rng);
  return model;
}

void install_hybrid_masks(nn::Sequential& model) {
  core::install_random_hybrid_masks(model, /*block=*/16, /*n=*/2, /*m=*/4,
                                    /*pruned_ranks=*/4);
}

std::vector<Tensor> request_stream() {
  Rng rng(11);
  std::vector<Tensor> reqs;
  reqs.reserve(static_cast<std::size_t>(kStream));
  for (std::int64_t i = 0; i < kStream; ++i)
    reqs.push_back(Tensor::randn({kIn}, rng));
  return reqs;
}

void run_sequential(benchmark::State& state, nn::Sequential& model) {
  kernels::set_num_threads(static_cast<int>(state.range(0)));
  const std::vector<Tensor> reqs = request_stream();
  for (auto _ : state) {
    for (const Tensor& r : reqs) {
      Tensor y = nn::predict(model, r.reshaped({1, kIn}));
      benchmark::DoNotOptimize(y.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * kStream);
  kernels::set_num_threads(0);
}

void run_engine(benchmark::State& state,
                std::shared_ptr<const serve::CompiledModel> compiled) {
  kernels::set_num_threads(static_cast<int>(state.range(0)));
  serve::EngineOptions opts;
  opts.max_batch = 16;
  opts.queue_depth = 2 * kStream;
  opts.flush_timeout = std::chrono::microseconds(200);
  serve::Engine engine(std::move(compiled), opts);

  const std::vector<Tensor> reqs = request_stream();
  std::vector<double> latency_us;
  for (auto _ : state) {
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(reqs.size());
    for (const Tensor& r : reqs) futures.push_back(engine.submit(r));
    for (auto& f : futures) {
      const serve::Response resp = f.get();
      latency_us.push_back(static_cast<double>(
          (resp.stats.queue_time + resp.stats.run_time).count()));
    }
  }
  state.SetItemsProcessed(state.iterations() * kStream);
  std::sort(latency_us.begin(), latency_us.end());
  if (!latency_us.empty()) {
    state.counters["p50_lat_us"] = latency_us[latency_us.size() / 2];
    state.counters["p95_lat_us"] = latency_us[latency_us.size() * 95 / 100];
  }
  state.counters["occupancy"] = engine.stats().occupancy();
  kernels::set_num_threads(0);
}

void BM_ServeSequentialDense(benchmark::State& state) {
  auto model = serve_mlp();
  run_sequential(state, *model);
}
BENCHMARK(BM_ServeSequentialDense)->Apply(serve_threads);

void BM_ServeEngineDense(benchmark::State& state) {
  run_engine(state, serve::CompiledModel::compile(serve_mlp()));
}
BENCHMARK(BM_ServeEngineDense)->Apply(serve_threads);

void BM_ServeSequentialPacked(benchmark::State& state) {
  // Hooks installed by compile, so the sequential loop serves packed too —
  // the engine entries below differ only by batching.
  auto model = serve_mlp();
  install_hybrid_masks(*model);
  auto artifact = std::make_shared<const deploy::PackedModel>(
      deploy::PackedModel::pack(*model, 16, 2, 4));
  auto compiled = serve::CompiledModel::compile(model, artifact);
  run_sequential(state, *model);
}
BENCHMARK(BM_ServeSequentialPacked)->Apply(serve_threads);

void BM_ServeEnginePacked(benchmark::State& state) {
  auto model = serve_mlp();
  install_hybrid_masks(*model);
  auto artifact = std::make_shared<const deploy::PackedModel>(
      deploy::PackedModel::pack(*model, 16, 2, 4));
  run_engine(state, serve::CompiledModel::compile(model, artifact));
}
BENCHMARK(BM_ServeEnginePacked)->Apply(serve_threads);

void BM_ServeEngineQuantized(benchmark::State& state) {
  // The packed engine served from the int8 payload (CompileOptions), so
  // the latency rows sit next to BM_ServeEnginePacked's fp32 ones; the
  // payload counters record the artifact-size delta the int8 path buys.
  auto model = serve_mlp();
  install_hybrid_masks(*model);
  auto artifact = std::make_shared<const deploy::PackedModel>(
      deploy::PackedModel::pack(*model, 16, 2, 4));
  state.counters["payload_fp32_bytes"] =
      static_cast<double>(artifact->stats().packed_payload_bits) / 8.0;
  serve::CompileOptions opts;
  opts.quantize_payload = true;
  auto compiled = serve::CompiledModel::compile(model, artifact, opts);
  state.counters["payload_int8_bytes"] =
      static_cast<double>(compiled->packed()->stats().packed_payload_bits) /
      8.0;
  run_engine(state, std::move(compiled));
}
BENCHMARK(BM_ServeEngineQuantized)->Apply(serve_threads);

}  // namespace
