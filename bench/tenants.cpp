// Tenant-fleet bench: one shared base model, thousands of resident
// mask-delta personalizations, an LRU-compiled cache, and a routed serve
// phase — all in one process. This is the memory story of the tenant
// subsystem made measurable: residency scales as
//
//   base + sum(delta_i) + K * compiled_overhead
//
// (K = what the compiled budget holds), while the naive fleet — one
// PackedModel copy per tenant — scales as N * base. The bench registers
// --tenants personalizations, sweeps an acquire() over every one of them
// (so each is compiled and served at least once), then drives a skewed
// request mix through a tenant::Router.
//
// JSON (--json PATH) is google-benchmark-shaped so tools/compare_bench.py
// gates it against the committed BENCH_tenants.json. Gated entries (a
// baseline of 0 is an exact must-stay-0 gate — see docs/benchmarks.md):
//   Tenants/fleet/gate_excess_base_copies   aliasing audit: every overlay
//                                           must point into the one base
//                                           arena, never a private copy
//   Tenants/fleet/gate_failed_requests      every routed request resolves kOk
//   Tenants/fleet/gate_resident_over_budget compiled residency never exceeds
//                                           the configured budget (bytes over)
//   Tenants/fleet/gate_lost_tenants         save -> fresh store -> load must
//                                           recover every registered tenant
//   Tenants/fleet/gate_crc_failures         a just-written shard must scan
//                                           with zero integrity failures
// Everything else (delta sizes, residency split, naive-fleet comparison,
// hit/evict counts, serve rps, shard save/load times) is informational.
//
// Usage:
//   bench_tenants [--tenants N] [--engines E] [--budget-mib M]
//                 [--requests R] [--seed S] [--json PATH] [--quiet]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/block_pruning.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "tenant/router.h"

namespace {

using namespace crisp;
using Clock = std::chrono::steady_clock;

constexpr std::int64_t kBlock = 8, kN = 2, kM = 4;
/// The universal pattern keeps this fraction of block columns; every
/// tenant then drops one more surviving block per block-row (its
/// class-aware restriction), so deltas differ tenant to tenant.
constexpr std::int64_t kPrunedRanks = 2;

/// The shared base: an MLP big enough that "a copy per tenant" visibly
/// does not scale, small enough that registering thousands of tenants
/// (each one a full mask derivation) stays a sub-second setup.
std::shared_ptr<nn::Sequential> make_base_model() {
  Rng rng(11);
  auto model = std::make_shared<nn::Sequential>("fleet_mlp");
  model->emplace<nn::Linear>("fc1", 128, 96, rng);
  model->emplace<nn::ReLU>("relu1");
  model->emplace<nn::Linear>("fc2", 96, 64, rng);
  model->emplace<nn::ReLU>("relu2");
  model->emplace<nn::Linear>("head", 64, 16, rng);
  return model;
}

/// Zeroes one *surviving* block per block-row of every masked parameter,
/// selected by `salt` — the per-tenant restriction on top of the shared
/// pattern. Mirrors what a class-aware pruner produces: uniform per-row
/// drop counts, so the result stays a valid CRISP pattern.
void drop_one_block_per_row(nn::Sequential& model, std::uint64_t salt) {
  for (nn::Parameter* p : model.prunable_parameters()) {
    if (!p->has_mask()) continue;
    const std::int64_t rows = p->matrix_rows, cols = p->matrix_cols;
    const std::int64_t grid_rows = (rows + kBlock - 1) / kBlock;
    const std::int64_t grid_cols = (cols + kBlock - 1) / kBlock;
    float* mask = p->mask.data();
    for (std::int64_t br = 0; br < grid_rows; ++br) {
      const std::int64_t r0 = br * kBlock, r1 = std::min(rows, r0 + kBlock);
      std::vector<std::int64_t> survivors;
      for (std::int64_t bc = 0; bc < grid_cols; ++bc) {
        const std::int64_t c0 = bc * kBlock, c1 = std::min(cols, c0 + kBlock);
        bool live = false;
        for (std::int64_t r = r0; r < r1 && !live; ++r)
          for (std::int64_t c = c0; c < c1; ++c)
            if (mask[r * cols + c] != 0.0f) {
              live = true;
              break;
            }
        if (live) survivors.push_back(bc);
      }
      if (survivors.empty()) continue;
      const std::int64_t bc = survivors[static_cast<std::size_t>(
          (salt + static_cast<std::uint64_t>(br)) % survivors.size())];
      const std::int64_t c0 = bc * kBlock, c1 = std::min(cols, c0 + kBlock);
      for (std::int64_t r = r0; r < r1; ++r)
        for (std::int64_t c = c0; c < c1; ++c) mask[r * cols + c] = 0.0f;
    }
  }
}

tenant::MaskDelta make_tenant_delta(const tenant::BaseArtifact& base,
                                    std::uint64_t salt) {
  // Same factory + same default seed reconstructs the base pattern; the
  // salt then picks which surviving blocks this tenant gives up.
  std::shared_ptr<nn::Sequential> model = make_base_model();
  core::install_random_hybrid_masks(*model, kBlock, kN, kM, kPrunedRanks);
  drop_one_block_per_row(*model, salt);
  return tenant::MaskDelta::from_model(base, *model);
}

std::string tenant_id(std::int64_t i) {
  std::string id = "t";
  id += std::to_string(i);
  return id;
}

double uniform01(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

// ---- JSON (compare_bench.py-compatible, same shape as bench_loadgen) --------

void json_entry(std::FILE* f, bool* first, const std::string& name,
                double value) {
  std::fprintf(f, "%s\n    {\"name\": \"%s\", \"run_name\": \"%s\", "
               "\"run_type\": \"iteration\", \"iterations\": 1, "
               "\"real_time\": %.4f, \"cpu_time\": %.4f, "
               "\"time_unit\": \"us\"}",
               *first ? "" : ",", name.c_str(), name.c_str(), value, value);
  *first = false;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t tenants = 2000;
  std::int64_t engines = 4;
  std::int64_t budget_mib = 0;  // 0 => sized to hold 8 compiled residents
  std::int64_t requests = 512;
  std::uint64_t seed = 42;
  std::string json_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tenants: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--tenants") tenants = std::atoll(next());
    else if (arg == "--engines") engines = std::atoll(next());
    else if (arg == "--budget-mib") budget_mib = std::atoll(next());
    else if (arg == "--requests") requests = std::atoll(next());
    else if (arg == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--json") json_path = next();
    else if (arg == "--quiet") quiet = true;
    else {
      std::fprintf(stderr, "tenants: unknown argument %s (see header)\n",
                   arg.c_str());
      return 2;
    }
  }

  const tenant::ModelFactory factory = [] { return make_base_model(); };

  // Base artifact: the one copy of the universal pruned model.
  auto base = [&] {
    std::shared_ptr<nn::Sequential> model = factory();
    core::install_random_hybrid_masks(*model, kBlock, kN, kM, kPrunedRanks);
    return tenant::BaseArtifact::create(
        std::make_shared<const deploy::PackedModel>(
            deploy::PackedModel::pack(*model, kBlock, kN, kM)));
  }();

  // The per-resident accounting unit depends on the architecture, so size
  // the budget off a probe store rather than guessing.
  tenant::StoreOptions sopts;
  {
    tenant::Store probe(base, factory);
    const std::int64_t overhead = probe.compiled_overhead_bytes();
    sopts.compiled_budget_bytes =
        budget_mib > 0 ? budget_mib << 20 : 8 * overhead;
  }
  auto store = std::make_shared<tenant::Store>(base, factory, sopts);

  // ---- register the fleet ---------------------------------------------------
  const Clock::time_point t_reg0 = Clock::now();
  for (std::int64_t i = 0; i < tenants; ++i)
    store->register_tenant(tenant_id(i), make_tenant_delta(*base, seed + i));
  const double register_s =
      std::chrono::duration<double>(Clock::now() - t_reg0).count();

  // ---- compile sweep: every tenant materialized at least once ---------------
  // Touches all N personalizations through the LRU cache, so the budget,
  // eviction, and aliasing machinery all run at fleet scale.
  const Clock::time_point t_sweep0 = Clock::now();
  for (std::int64_t i = 0; i < tenants; ++i) {
    if (store->acquire(tenant_id(i)) == nullptr) {
      std::fprintf(stderr, "tenants: acquire(%s) returned null\n",
                   tenant_id(i).c_str());
      return 1;
    }
  }
  const double sweep_s =
      std::chrono::duration<double>(Clock::now() - t_sweep0).count();

  // ---- routed serve phase ---------------------------------------------------
  // Skewed mix: most requests hit a hot set the size of the engine pool
  // (the affinity fast path), the rest land uniformly across the fleet
  // (cold compiles + engine retirement).
  tenant::RouterOptions ropts;
  ropts.max_engines = engines;
  tenant::Router router(store, ropts);
  std::mt19937_64 rng(seed);
  Rng sample_rng(seed + 1);
  const Tensor sample = Tensor::randn({128}, sample_rng);

  // Prewarm: build the hot set's engines before the timed phase, so the
  // measured mix actually exercises the affinity fast path instead of
  // parking everything behind the very first cold compile.
  for (std::int64_t t = 0; t < std::min(engines, tenants); ++t) {
    serve::Request warm;
    warm.sample = sample;
    router.submit(tenant_id(t), std::move(warm)).get();
  }

  std::vector<std::future<serve::Response>> inflight;
  inflight.reserve(static_cast<std::size_t>(requests));
  const Clock::time_point t_serve0 = Clock::now();
  for (std::int64_t r = 0; r < requests; ++r) {
    const std::int64_t t =
        uniform01(rng) < 0.85
            ? static_cast<std::int64_t>(rng()) % std::min(engines, tenants)
            : static_cast<std::int64_t>(rng()) % tenants;
    serve::Request req;
    req.sample = sample;
    inflight.push_back(router.submit(tenant_id(std::llabs(t)), std::move(req)));
  }
  std::int64_t failed = 0;
  for (auto& f : inflight)
    if (f.get().status != serve::Response::Status::kOk) ++failed;
  const double serve_s =
      std::chrono::duration<double>(Clock::now() - t_serve0).count();
  const tenant::RouterStats rstats = router.stats();
  router.shutdown();

  // ---- durability phase: save -> restart -> load -> serve -------------------
  // The whole fleet goes to a CRSPSHRD shard (atomic temp+rename write),
  // comes back into a *fresh* store — the process-restart story — and the
  // recovered fleet serves routed traffic. Gated: zero tenants lost, zero
  // integrity failures on a just-written shard, and the recovered serve
  // counts into gate_failed_requests like any other routed request.
  const std::string shard_path =
      "/tmp/bench_tenants_" + std::to_string(seed) + ".shard";
  const Clock::time_point t_save0 = Clock::now();
  const std::int64_t shard_saved = store->save_shard(shard_path);
  const double save_s =
      std::chrono::duration<double>(Clock::now() - t_save0).count();

  auto restored = std::make_shared<tenant::Store>(base, factory, sopts);
  const Clock::time_point t_load0 = Clock::now();
  const tenant::ShardLoadReport lrep = restored->load_shard(shard_path);
  const double load_s =
      std::chrono::duration<double>(Clock::now() - t_load0).count();
  std::remove(shard_path.c_str());

  const std::int64_t lost_tenants = tenants - restored->tenant_count();
  const std::int64_t crc_failures =
      lrep.scan.crc_failures + lrep.scan.malformed + lrep.quarantined;

  {
    tenant::Router recovered_router(restored, ropts);
    for (std::int64_t t = 0; t < std::min(engines, tenants); ++t) {
      serve::Request req;
      req.sample = sample;
      if (recovered_router.submit(tenant_id(t), std::move(req)).get().status !=
          serve::Response::Status::kOk)
        ++failed;
    }
  }

  // ---- accounting -----------------------------------------------------------
  const tenant::ResidentBytes res = store->resident_bytes();
  const tenant::StoreStats stats = store->stats();
  const std::int64_t base_bytes = base->base_bytes();
  const std::int64_t over_budget =
      std::max<std::int64_t>(0, res.compiled - sopts.compiled_budget_bytes);
  const std::int64_t excess = store->excess_base_copies();
  const double mean_delta =
      static_cast<double>(res.deltas) / static_cast<double>(tenants);
  const double naive_kib =
      static_cast<double>(tenants * base_bytes) / 1024.0;
  const double rps = static_cast<double>(requests) / serve_s;

  if (!quiet) {
    std::printf("=== tenant fleet: %lld tenants, %lld engines, budget %.0f "
                "KiB ===\n",
                static_cast<long long>(tenants),
                static_cast<long long>(engines),
                static_cast<double>(sopts.compiled_budget_bytes) / 1024.0);
    std::printf("base artifact      %8.1f KiB (shared, one copy)\n",
                static_cast<double>(base_bytes) / 1024.0);
    std::printf("deltas             %8.1f KiB total, %.0f B/tenant mean\n",
                static_cast<double>(res.deltas) / 1024.0, mean_delta);
    std::printf("compiled cache     %8.1f KiB (%lld resident)\n",
                static_cast<double>(res.compiled) / 1024.0,
                static_cast<long long>(store->compiled_count()));
    std::printf("resident total     %8.1f KiB vs naive N x base %.1f KiB "
                "(%.1fx smaller)\n",
                static_cast<double>(res.total()) / 1024.0, naive_kib,
                naive_kib / (static_cast<double>(res.total()) / 1024.0));
    std::printf("sweep              %lld compiles, %lld evictions, %.2f s "
                "(%.0f compiles/s)\n",
                static_cast<long long>(stats.compiles),
                static_cast<long long>(stats.evictions), sweep_s,
                static_cast<double>(tenants) / sweep_s);
    std::printf("serve              %lld requests (%lld hot, %lld cold) in "
                "%.2f s = %.0f rps, %lld failed\n",
                static_cast<long long>(requests),
                static_cast<long long>(rstats.hot),
                static_cast<long long>(rstats.cold_misses), serve_s, rps,
                static_cast<long long>(failed));
    std::printf("register           %.2f s | excess base copies %lld | "
                "compiled over budget %lld B\n",
                register_s, static_cast<long long>(excess),
                static_cast<long long>(over_budget));
    std::printf("durability         %lld records saved in %.2f s, recovered "
                "%lld in %.2f s | lost %lld, integrity failures %lld\n",
                static_cast<long long>(shard_saved), save_s,
                static_cast<long long>(lrep.loaded), load_s,
                static_cast<long long>(lost_tenants),
                static_cast<long long>(crc_failures));
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "tenants: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"context\": {\"executable\": \"bench_tenants\", "
                 "\"seed\": %llu},\n  \"benchmarks\": [",
                 static_cast<unsigned long long>(seed));
    bool first = true;
    const std::string b = "Tenants/fleet/";
    // Gated entries: all three record 0, so compare_bench.py holds them
    // at exactly 0 forever.
    json_entry(f, &first, b + "gate_excess_base_copies",
               static_cast<double>(excess));
    json_entry(f, &first, b + "gate_failed_requests",
               static_cast<double>(failed));
    json_entry(f, &first, b + "gate_resident_over_budget",
               static_cast<double>(over_budget));
    json_entry(f, &first, b + "gate_lost_tenants",
               static_cast<double>(lost_tenants));
    json_entry(f, &first, b + "gate_crc_failures",
               static_cast<double>(crc_failures));
    // Informational entries.
    json_entry(f, &first, b + "tenants", static_cast<double>(tenants));
    json_entry(f, &first, b + "base_kib",
               static_cast<double>(base_bytes) / 1024.0);
    json_entry(f, &first, b + "mean_delta_bytes", mean_delta);
    json_entry(f, &first, b + "resident_kib",
               static_cast<double>(res.total()) / 1024.0);
    json_entry(f, &first, b + "naive_fleet_kib", naive_kib);
    json_entry(f, &first, b + "compiles", static_cast<double>(stats.compiles));
    json_entry(f, &first, b + "hits", static_cast<double>(stats.hits));
    json_entry(f, &first, b + "evictions",
               static_cast<double>(stats.evictions));
    json_entry(f, &first, b + "serve_rps", rps);
    json_entry(f, &first, b + "shard_save_ms", save_s * 1e3);
    json_entry(f, &first, b + "shard_load_ms", load_s * 1e3);
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }
  return failed == 0 && excess == 0 && over_budget == 0 && lost_tenants == 0 &&
                 crc_failures == 0
             ? 0
             : 1;
}
