// Ablation — the "edge-centric" resource budget (§III-E).
//
// The paper allocates CRISP-STC "only a fraction of the SMEM bandwidth" of
// a datacenter Sparse Tensor Core. This bench makes the consequence
// visible: sweeping on- and off-chip bandwidth over full ResNet-50 shows
// where the design moves from compute-bound (sparsity pays linearly) to
// movement-bound (sparsity stops paying — the regime the paper's DSTC
// discussion blames for its late-layer collapse). A second sweep reports
// the Pareto frontier over cores/MACs/SMEM at edge bandwidth.
#include <cstdio>

#include "accel/dense_model.h"
#include "accel/dse.h"
#include "accel/report.h"

using namespace crisp::accel;

int main() {
  std::printf("\n================================================================\n");
  std::printf("ablation_bandwidth — edge bandwidth budget (design choice, §III-E)\n");
  std::printf("================================================================\n");

  const AcceleratorConfig base = AcceleratorConfig::edge_default();
  const EnergyModel energy = EnergyModel::edge_default();
  const auto net = resnet50_imagenet_workloads();
  const auto profiles = ramp_profiles(static_cast<std::int64_t>(net.size()),
                                      2, 4, 64, 0.80, 0.92);
  const std::vector<SparsityProfile> dense_profiles(
      net.size(), SparsityProfile::dense());

  // --- bandwidth sweep -------------------------------------------------------
  std::printf("\nend-to-end ResNet-50, CRISP 2:4 B=64 (kappa 0.80-0.92 ramp)\n");
  std::printf("%-10s %-10s %14s %14s %10s\n", "smem B/c", "dram B/c",
              "crisp Mcycles", "dense Mcycles", "speedup");
  for (const double smem_bw : {16.0, 32.0, 64.0, 128.0, 256.0}) {
    for (const double dram_bw : {4.0, 16.0, 64.0}) {
      AcceleratorConfig cfg = base;
      cfg.smem_bw_bytes_per_cycle = smem_bw;
      cfg.dram_bw_bytes_per_cycle = dram_bw;
      const CrispStc crisp(cfg, energy);
      const DenseModel dense(cfg, energy);
      double crisp_cycles = 0, dense_cycles = 0;
      for (std::size_t i = 0; i < net.size(); ++i) {
        crisp_cycles += crisp.simulate(net[i], profiles[i]).cycles;
        dense_cycles += dense.simulate(net[i], dense_profiles[i]).cycles;
      }
      std::printf("%-10.0f %-10.0f %14.2f %14.2f %9.1fx\n", smem_bw, dram_bw,
                  crisp_cycles / 1e6, dense_cycles / 1e6,
                  dense_cycles / crisp_cycles);
    }
  }
  std::printf("(speedup saturates once the fabric is movement-bound: extra "
              "bandwidth helps, extra sparsity does not)\n");

  // --- compute/SMEM Pareto sweep at edge bandwidth ----------------------------
  DseKnobs knobs;
  knobs.tensor_cores = {2, 4, 8};
  knobs.macs_per_core = {32, 64, 128};
  knobs.smem_kbytes = {128, 256, 512};
  const auto points = sweep_configs(base, energy, knobs, net, profiles);
  const auto front = pareto_front(points);

  std::printf("\nPareto-efficient configurations (of %zu swept):\n",
              points.size());
  std::printf("%-44s %14s %12s %14s\n", "config", "Mcycles", "energy uJ",
              "EDP (norm)");
  const double edp0 = points[front.front()].edp();
  for (const std::size_t i : front)
    std::printf("%-44s %14.2f %12.1f %14.3f\n", points[i].label().c_str(),
                points[i].cycles / 1e6, points[i].energy_pj / 1e6,
                points[i].edp() / edp0);

  std::printf("\nexpected shape: the paper's 4x64 @ 256KB point sits on or "
              "near the frontier; scaling MACs without bandwidth falls off "
              "it\n");
  return 0;
}
