// Open-loop serving load harness: drives a live serve::Engine with a
// Poisson arrival process (plus deterministic bursts), a skewed mix of
// priority classes and input shapes, and reports what an operator actually
// tunes for — per-class p50/p95/p99 latency, goodput, and shed rate.
//
// Open-loop means arrivals never wait for responses: the generator submits
// on a precomputed schedule regardless of how far the engine has fallen
// behind, which is what real traffic does and what closed-loop benchmarks
// (bench/serve.cpp's submit-then-drain iterations) structurally cannot
// show. Overload here produces queue growth, watermark rejections,
// displacement shedding, and deadline expiry — all visible as explicit
// Response::Status counts rather than silent latency blowup.
//
// Determinism: the arrival schedule, class/shape mix, and sample contents
// are a pure function of --seed and the arrival rate. The rate itself is
// calibrated to the host (saturation = max_batch / measured batch time)
// so --load 0.5 means "half this machine's capacity" on any machine; pass
// --rate to pin an absolute schedule instead.
//
// Profiles (--profile):
//   subsat    load 0.5 — the CI gate profile: shed rate must be exactly 0
//             and interactive p99 is regression-gated
//   overload  load 2.0 — the demo: interactive p99 holds near its subsat
//             value while standard/batch work is shed with statuses
//   all       both, into one JSON (the recording/CI default)
//   custom    whatever --load / --rate says
//
// JSON (--json PATH) is google-benchmark-shaped so tools/compare_bench.py
// gates it against the committed BENCH_loadgen.json: entries named
// Loadgen/<profile>/gate_* are the gated ones (see docs/benchmarks.md —
// a baseline value of 0 is an exact must-stay-0 gate), everything else is
// informational, and a "histograms" section carries per-class latency
// histograms for offline inspection. docs/serving.md walks through a
// recorded session.
//
// Usage:
//   bench_loadgen [--profile subsat|overload|all|custom] [--load X]
//                 [--rate RPS] [--duration SECONDS] [--seed N]
//                 [--json PATH] [--quiet]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "serve/engine.h"

namespace {

using namespace crisp;
using Clock = std::chrono::steady_clock;

// ---- workload definition ----------------------------------------------------

/// Request mix: three traffic classes with skewed weights, mirroring a
/// shared personalized-serving box — a latency-sensitive interactive
/// stream, a default stream, and best-effort batch work.
struct TrafficClass {
  const char* name;
  serve::Priority priority;
  double weight;        ///< fraction of arrivals
  bool deadlined;       ///< interactive work carries a deadline
  bool fixed_shape;     ///< always sends kShapes[0] (see below)
};
// Interactive is deliberately a small fraction of traffic: strict
// priority isolates a tier only while that tier alone stays well below
// saturation — at 2x overload with 3x bursts, a 10% interactive share
// peaks around 0.4x saturation, so its latency stays queue-shallow while
// the bulk tiers absorb the shedding.
// Interactive sends one fixed resolution (a single product surface), so
// all interactive work batches together; the shape skew below comes from
// the heterogeneous bulk tiers.
constexpr TrafficClass kClasses[] = {
    {"interactive", serve::Priority::kInteractive, 0.10, true, true},
    {"standard", serve::Priority::kStandard, 0.55, false, false},
    {"batch", serve::Priority::kBatch, 0.35, false, false},
};
constexpr int kClassCount = 3;

/// Input-shape skew: most tenants send the common resolution, a minority
/// send a larger one (distinct shapes cannot share a batch, so the skew
/// exercises the scheduler's shape-aware coalescing).
const Shape kShapes[] = {{3, 16, 16}, {3, 20, 20}};
constexpr double kShapeWeights[] = {0.85, 0.15};
constexpr int kShapeCount = 2;
constexpr int kSamplesPerShape = 32;

/// Burst modulation on top of the Poisson base rate: every 500 ms the
/// rate triples for 100 ms — the "everyone opens the app at once" shape
/// that mean-rate-only generators miss. The base rate is scaled down so
/// the *time-averaged* rate equals the requested load; profiles that gate
/// clean invariants (subsat) disable bursts entirely.
constexpr double kBurstEveryUs = 500000.0;
constexpr double kBurstLenUs = 100000.0;
constexpr double kBurstFactor = 3.0;
constexpr double kBurstMeanFactor =
    1.0 + (kBurstLenUs / kBurstEveryUs) * (kBurstFactor - 1.0);

std::shared_ptr<nn::Sequential> loadgen_model() {
  Rng rng(7);
  auto model = std::make_shared<nn::Sequential>("loadgen_net");
  nn::Conv2dSpec c1;
  c1.in_channels = 3;
  c1.out_channels = 16;
  c1.kernel = 3;
  c1.padding = 1;
  model->emplace<nn::Conv2d>("conv1", c1, rng);
  model->emplace<nn::ReLU>("relu1");
  nn::Conv2dSpec c2;
  c2.in_channels = 16;
  c2.out_channels = 32;
  c2.kernel = 3;
  c2.padding = 1;
  model->emplace<nn::Conv2d>("conv2", c2, rng);
  model->emplace<nn::ReLU>("relu2");
  model->emplace<nn::GlobalAvgPool>("gap");
  model->emplace<nn::Flatten>("flatten");
  model->emplace<nn::Linear>("fc", 32, 100, rng);
  return model;
}

// ---- deterministic draws ----------------------------------------------------
// Hand-rolled transforms over mt19937_64 (whose sequence the standard
// pins down), so the schedule is bit-identical across stdlib
// implementations — std::exponential_distribution et al. are not.

double uniform01(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

double exponential_gap_us(std::mt19937_64& rng, double rate_rps) {
  const double u = uniform01(rng);
  return -std::log1p(-u) * 1e6 / rate_rps;
}

int pick_weighted(std::mt19937_64& rng, const double* weights, int n) {
  double u = uniform01(rng);
  for (int i = 0; i < n - 1; ++i) {
    if (u < weights[i]) return i;
    u -= weights[i];
  }
  return n - 1;
}

// ---- schedule ---------------------------------------------------------------

struct Arrival {
  double t_us;    ///< offset from run start
  int cls;        ///< index into kClasses
  int shape;      ///< index into kShapes
  int sample;     ///< index into the pregenerated sample pool
};

std::vector<Arrival> make_schedule(std::uint64_t seed, double mean_rate_rps,
                                   double duration_us, bool bursts) {
  std::mt19937_64 rng(seed);
  double class_weights[kClassCount];
  for (int c = 0; c < kClassCount; ++c) class_weights[c] = kClasses[c].weight;

  // Scale the base rate so bursts modulate around the requested mean
  // instead of adding 40% hidden load on top of it.
  const double base_rps =
      bursts ? mean_rate_rps / kBurstMeanFactor : mean_rate_rps;
  std::vector<Arrival> schedule;
  double t = 0.0;
  for (;;) {
    const bool burst = bursts && std::fmod(t, kBurstEveryUs) < kBurstLenUs;
    const double rate = base_rps * (burst ? kBurstFactor : 1.0);
    t += exponential_gap_us(rng, rate);
    if (t >= duration_us) break;
    Arrival a;
    a.t_us = t;
    a.cls = pick_weighted(rng, class_weights, kClassCount);
    a.shape = kClasses[a.cls].fixed_shape
                  ? 0
                  : pick_weighted(rng, kShapeWeights, kShapeCount);
    a.sample = static_cast<int>(rng() % kSamplesPerShape);
    schedule.push_back(a);
  }
  return schedule;
}

// ---- metrics ----------------------------------------------------------------

struct ClassMetrics {
  std::int64_t submitted = 0;
  std::int64_t ok = 0;
  std::int64_t rejected = 0;
  std::int64_t infeasible = 0;
  std::int64_t expired = 0;
  std::int64_t shed = 0;
  std::int64_t cancelled = 0;
  std::int64_t deadline_met = 0;
  std::vector<double> latency_us;  ///< served requests, queue + run

  std::int64_t shed_total() const {
    return rejected + infeasible + expired + shed;
  }
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// Log-2 spaced latency histogram from 100 µs up; the last bucket is
/// unbounded. Emitted into the JSON for offline tail inspection.
constexpr int kHistBuckets = 18;
double hist_upper_us(int b) {
  return b == kHistBuckets - 1 ? -1.0  // +inf sentinel
                               : 100.0 * std::pow(2.0, b);
}
void hist_fill(const std::vector<double>& lat, std::int64_t* buckets) {
  for (double l : lat) {
    int b = 0;
    while (b < kHistBuckets - 1 && l > hist_upper_us(b)) ++b;
    ++buckets[b];
  }
}

// ---- one profile run --------------------------------------------------------

struct ProfileResult {
  std::string profile;
  double rate_rps = 0.0;
  double load = 0.0;
  double saturation_rps = 0.0;
  double batch_us = 0.0;
  double deadline_us = 0.0;
  double duration_s = 0.0;
  double goodput_rps = 0.0;
  double occupancy = 0.0;
  ClassMetrics per_class[kClassCount];
  ClassMetrics total;
};

serve::EngineOptions engine_options() {
  serve::EngineOptions opts;
  opts.max_batch = 16;
  opts.queue_depth = 256;
  // Sized near one batch time: at light load the worker waits out most of
  // a service interval to fill batches (throughput headroom), at overload
  // batches fill instantly and the window never binds.
  opts.flush_timeout = std::chrono::microseconds(2000);
  // Open-loop: a blocking submit would turn the generator closed-loop.
  opts.overflow = serve::EngineOptions::Overflow::kReject;
  // Tiered admission: batch work stops being admitted at 60% queue
  // occupancy, standard at 90%; the headroom above each band is reserved
  // for the more urgent classes.
  opts.admission_watermark[static_cast<int>(serve::Priority::kBatch)] = 0.60;
  opts.admission_watermark[static_cast<int>(serve::Priority::kStandard)] = 0.90;
  return opts;
}

/// Saturation throughput of this host for the loadgen model: run full
/// batches through the compiled model and take the 75th-percentile wall
/// time. Deliberately conservative (a high percentile, not the median):
/// over-estimating batch time under-estimates saturation, which keeps the
/// subsat profile genuinely sub-saturated even when the machine runs
/// slower during the measured window than it did during calibration.
double calibrate_batch_us(const serve::CompiledModel& compiled,
                          std::int64_t max_batch) {
  Rng rng(3);
  Shape bshape{max_batch};
  bshape.insert(bshape.end(), kShapes[0].begin(), kShapes[0].end());
  const Tensor batch = Tensor::randn(bshape, rng);
  std::vector<double> times;
  for (int i = 0; i < 13; ++i) {
    const Clock::time_point t0 = Clock::now();
    Tensor out = compiled.run(batch);
    const Clock::time_point t1 = Clock::now();
    if (i > 0)  // discard the cold first run
      times.push_back(std::chrono::duration<double, std::micro>(t1 - t0)
                          .count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() * 3 / 4];
}

ProfileResult run_profile(const std::string& profile, double load,
                          double rate_override_rps, double duration_s,
                          std::uint64_t seed, bool bursts, double batch_us,
                          std::shared_ptr<const serve::CompiledModel> compiled,
                          bool quiet) {
  ProfileResult res;
  res.profile = profile;
  res.duration_s = duration_s;

  const serve::EngineOptions opts = engine_options();
  res.batch_us = batch_us;
  res.saturation_rps =
      static_cast<double>(opts.max_batch) * 1e6 / res.batch_us;
  res.rate_rps = rate_override_rps > 0.0 ? rate_override_rps
                                         : load * res.saturation_rps;
  res.load = res.rate_rps / res.saturation_rps;
  // Interactive deadline: generous against the no-queue service floor
  // (flush wait + a few batch times), tight against a deep queue — the
  // promise an interactive tier makes. Under strict priority this bounds
  // the served-interactive tail at overload to deadline + one batch run.
  res.deadline_us =
      static_cast<double>(opts.flush_timeout.count()) + 4.0 * res.batch_us;

  const std::vector<Arrival> schedule =
      make_schedule(seed, res.rate_rps, duration_s * 1e6, bursts);

  // Pregenerated request payloads, deterministic per (shape, index).
  std::vector<std::vector<Tensor>> samples(kShapeCount);
  for (int s = 0; s < kShapeCount; ++s)
    for (int i = 0; i < kSamplesPerShape; ++i) {
      Rng rng(static_cast<std::uint64_t>(1000 + s * 100 + i));
      samples[static_cast<std::size_t>(s)].push_back(
          Tensor::randn(kShapes[s], rng));
    }

  serve::Engine engine(compiled, opts);
  struct InFlight {
    std::future<serve::Response> future;
    int cls;
  };
  std::vector<InFlight> inflight;
  inflight.reserve(schedule.size());

  const Clock::time_point start = Clock::now();
  for (const Arrival& a : schedule) {
    const Clock::time_point due =
        start + std::chrono::microseconds(static_cast<std::int64_t>(a.t_us));
    // Open-loop: if the generator itself fell behind, submit immediately —
    // never skip and never wait for the engine.
    std::this_thread::sleep_until(due);
    serve::Request req;
    req.sample = samples[static_cast<std::size_t>(a.shape)]
                        [static_cast<std::size_t>(a.sample)];
    req.priority = kClasses[a.cls].priority;
    if (kClasses[a.cls].deadlined)
      req.deadline = std::chrono::microseconds(
          static_cast<std::int64_t>(res.deadline_us));
    inflight.push_back({engine.submit(std::move(req)), a.cls});
    ++res.per_class[a.cls].submitted;
  }

  // Drain: collect every future (the engine finishes or sheds the
  // backlog), then shut down.
  for (InFlight& f : inflight) {
    serve::Response r = f.future.get();
    ClassMetrics& m = res.per_class[f.cls];
    switch (r.status) {
      case serve::Response::Status::kOk: {
        ++m.ok;
        const double lat_us = static_cast<double>(
            (r.stats.queue_time + r.stats.run_time).count());
        m.latency_us.push_back(lat_us);
        if (!kClasses[f.cls].deadlined || lat_us <= res.deadline_us)
          ++m.deadline_met;
        break;
      }
      case serve::Response::Status::kRejected: ++m.rejected; break;
      case serve::Response::Status::kInfeasible: ++m.infeasible; break;
      case serve::Response::Status::kExpired: ++m.expired; break;
      case serve::Response::Status::kShed: ++m.shed; break;
      case serve::Response::Status::kCancelled: ++m.cancelled; break;
      // A bare engine never degrades — that's the tenant router's fallback
      // status. Counted as served if it ever shows up here.
      case serve::Response::Status::kDegraded: ++m.ok; break;
    }
  }
  res.occupancy = engine.stats().occupancy();
  engine.shutdown();

  for (int c = 0; c < kClassCount; ++c) {
    const ClassMetrics& m = res.per_class[c];
    res.total.submitted += m.submitted;
    res.total.ok += m.ok;
    res.total.rejected += m.rejected;
    res.total.infeasible += m.infeasible;
    res.total.expired += m.expired;
    res.total.shed += m.shed;
    res.total.cancelled += m.cancelled;
  }
  res.goodput_rps = static_cast<double>(res.total.ok) / duration_s;

  if (!quiet) {
    std::printf(
        "\n=== profile %s: load %.2fx saturation (%.0f rps of %.0f rps, "
        "batch %.0f us, %zu arrivals, %.1f s) ===\n",
        profile.c_str(), res.load, res.rate_rps, res.saturation_rps,
        res.batch_us, schedule.size(), duration_s);
    std::printf(
        "%-12s %9s %9s %8s %8s %8s %8s %10s %10s %10s %10s\n", "class",
        "submitted", "ok", "rejected", "expired", "shed", "infeas",
        "p50_us", "p99_us", "max_us", "dl_met");
    for (int c = 0; c < kClassCount; ++c) {
      ClassMetrics& m = res.per_class[c];
      std::vector<double> lat = m.latency_us;
      std::printf(
          "%-12s %9lld %9lld %8lld %8lld %8lld %8lld %10.0f %10.0f %10.0f "
          "%9.1f%%\n",
          kClasses[c].name, static_cast<long long>(m.submitted),
          static_cast<long long>(m.ok), static_cast<long long>(m.rejected),
          static_cast<long long>(m.expired), static_cast<long long>(m.shed),
          static_cast<long long>(m.infeasible), percentile(lat, 50.0),
          percentile(lat, 99.0), percentile(lat, 100.0),
          m.ok > 0 ? 100.0 * static_cast<double>(m.deadline_met) /
                         static_cast<double>(m.ok)
                   : 0.0);
    }
    std::printf(
        "goodput %.0f rps | occupancy %.2f | shed-rate %.1f%% "
        "(interactive deadline %.0f us)\n",
        res.goodput_rps, res.occupancy,
        res.total.submitted > 0
            ? 100.0 * static_cast<double>(res.total.shed_total()) /
                  static_cast<double>(res.total.submitted)
            : 0.0,
        res.deadline_us);
  }
  return res;
}

// ---- JSON -------------------------------------------------------------------

void json_entry(std::FILE* f, bool* first, const std::string& name,
                double value) {
  std::fprintf(f, "%s\n    {\"name\": \"%s\", \"run_name\": \"%s\", "
               "\"run_type\": \"iteration\", \"iterations\": 1, "
               "\"real_time\": %.4f, \"cpu_time\": %.4f, "
               "\"time_unit\": \"us\"}",
               *first ? "" : ",", name.c_str(), name.c_str(), value, value);
  *first = false;
}

void write_json(const std::string& path,
                const std::vector<ProfileResult>& results,
                std::uint64_t seed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "loadgen: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"context\": {\"executable\": \"bench_loadgen\", "
               "\"seed\": %llu},\n  \"benchmarks\": [",
               static_cast<unsigned long long>(seed));
  bool first = true;
  for (const ProfileResult& r : results) {
    const std::string base = "Loadgen/" + r.profile + "/";
    // Gated entries (see docs/benchmarks.md): the shed total is an exact
    // must-stay-0 gate when the baseline recorded 0; interactive p99 is a
    // regular slowdown-ratio gate.
    json_entry(f, &first, base + "gate_shed_total",
               static_cast<double>(r.total.shed_total()));
    ClassMetrics inter = r.per_class[0];
    json_entry(f, &first, base + "gate_interactive_p99_us",
               percentile(inter.latency_us, 99.0));
    // Informational entries.
    for (int c = 0; c < kClassCount; ++c) {
      ClassMetrics m = r.per_class[c];
      const std::string cls = base + kClasses[c].name + "/";
      json_entry(f, &first, cls + "p50_us", percentile(m.latency_us, 50.0));
      json_entry(f, &first, cls + "p95_us", percentile(m.latency_us, 95.0));
      json_entry(f, &first, cls + "p99_us", percentile(m.latency_us, 99.0));
      json_entry(f, &first, cls + "submitted",
                 static_cast<double>(m.submitted));
      json_entry(f, &first, cls + "ok", static_cast<double>(m.ok));
      json_entry(f, &first, cls + "shed_total",
                 static_cast<double>(m.shed_total()));
    }
    json_entry(f, &first, base + "goodput_rps", r.goodput_rps);
    json_entry(f, &first, base + "occupancy", r.occupancy);
    json_entry(f, &first, base + "rate_rps", r.rate_rps);
    json_entry(f, &first, base + "saturation_rps", r.saturation_rps);
  }
  std::fprintf(f, "\n  ],\n  \"histograms\": {");
  bool hfirst = true;
  for (const ProfileResult& r : results) {
    for (int c = 0; c < kClassCount; ++c) {
      std::int64_t buckets[kHistBuckets] = {0};
      hist_fill(r.per_class[c].latency_us, buckets);
      std::fprintf(f, "%s\n    \"%s/%s\": {\"unit\": \"us\", \"buckets\": [",
                   hfirst ? "" : ",", r.profile.c_str(), kClasses[c].name);
      hfirst = false;
      for (int b = 0; b < kHistBuckets; ++b)
        std::fprintf(f, "%s{\"le_us\": %.0f, \"count\": %lld}",
                     b == 0 ? "" : ", ", hist_upper_us(b),
                     static_cast<long long>(buckets[b]));
      std::fprintf(f, "]}");
    }
  }
  std::fprintf(f, "\n  }\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string profile = "all";
  std::string json_path;
  double load = 0.5;
  double rate = 0.0;
  double duration_s = 2.0;
  std::uint64_t seed = 42;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "loadgen: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--profile") profile = next();
    else if (arg == "--load") load = std::atof(next());
    else if (arg == "--rate") rate = std::atof(next());
    else if (arg == "--duration") duration_s = std::atof(next());
    else if (arg == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--json") json_path = next();
    else if (arg == "--quiet") quiet = true;
    else {
      std::fprintf(stderr, "loadgen: unknown argument %s (see header)\n",
                   arg.c_str());
      return 2;
    }
  }

  auto compiled = serve::CompiledModel::compile(loadgen_model());
  // One calibration shared by every profile in the run, so subsat and
  // overload are relative to the same measured saturation point.
  const double batch_us =
      calibrate_batch_us(*compiled, engine_options().max_batch);
  std::vector<ProfileResult> results;
  // subsat is the CI gate profile: steady Poisson (no bursts) at 30% of
  // saturation — the regime where zero shedding is an invariant, not a
  // race. overload is the demo: bursty traffic at 2x saturation.
  if (profile == "subsat" || profile == "all")
    results.push_back(run_profile("subsat", 0.3, 0.0, duration_s, seed,
                                  /*bursts=*/false, batch_us, compiled,
                                  quiet));
  if (profile == "overload" || profile == "all")
    results.push_back(run_profile("overload", 2.0, 0.0, duration_s, seed,
                                  /*bursts=*/true, batch_us, compiled,
                                  quiet));
  if (profile == "custom")
    results.push_back(run_profile("custom", load, rate, duration_s, seed,
                                  /*bursts=*/true, batch_us, compiled,
                                  quiet));
  if (results.empty()) {
    std::fprintf(stderr, "loadgen: unknown profile %s\n", profile.c_str());
    return 2;
  }

  if (!json_path.empty()) write_json(json_path, results, seed);
  return 0;
}
