// Fig. 7 — "Accuracy for different models with varying numbers of classes"
// plus the normalized-FLOPs-ratio rows at the bottom of the figure.
//
// Three models x two datasets x class counts: dense fine-tune (upper
// bound), CRISP, and the OCAP-style class-aware channel-pruning baseline.
// As in the paper, the global sparsity target scales with how few classes
// the user keeps (fewer classes -> more prunable capacity).
#include "core/baselines/channel_pruner.h"
#include "common.h"

using namespace crisp;

namespace {

/// Fewer user classes leave more redundant capacity: κ ramps 0.88 -> 0.80.
/// The paper runs 0.95 -> 0.85 on full-width models; our width-0.125
/// matrices keep only 1-2 block-columns per layer beyond ~0.90 (the
/// documented Fig. 3 scale limitation, EXPERIMENTS.md), so the sweep sits
/// in the range where the hybrid pattern is expressible at this width.
double kappa_for_classes(std::int64_t classes, std::int64_t total) {
  const double frac = static_cast<double>(classes) / static_cast<double>(total);
  return 0.88 - 0.08 * frac;
}

}  // namespace

int main() {
  bench::print_header(
      "fig7_accuracy_vs_classes — personalization accuracy + FLOPs ratios",
      "Fig. 7 (accuracy vs #user classes; FLOPs-ratio rows)");

  const std::vector<std::int64_t> class_counts =
      bench::fast_mode() ? std::vector<std::int64_t>{5, 25}
                         : std::vector<std::int64_t>{1, 5, 10, 25};

  for (nn::DatasetKind dkind :
       {nn::DatasetKind::kCifar100Like, nn::DatasetKind::kImageNetLike}) {
    for (nn::ModelKind mkind :
         {nn::ModelKind::kResNet50, nn::ModelKind::kVgg16,
          nn::ModelKind::kMobileNetV2}) {
      const nn::ZooSpec spec = bench::bench_spec(mkind, dkind);
      nn::PretrainedModel pm = nn::zoo_pretrained(spec, /*verbose=*/true);
      const TensorMap snapshot = pm.model->state_dict();

      std::printf("\n--- %s on %s (dense all-class accuracy %.1f%%) ---\n",
                  nn::model_kind_name(mkind), nn::dataset_kind_name(dkind),
                  100 * pm.test_accuracy);
      std::printf("%-9s | %10s | %10s %10s | %10s %10s | %7s\n", "#classes",
                  "dense-ft", "crisp", "flops", "channel", "eff-flops",
                  "kappa");

      for (std::int64_t count : class_counts) {
        Rng crng(100 + count);
        const auto classes = data::sample_user_classes(
            pm.data.train.num_classes, count, crng);
        const data::Dataset user_train =
            data::filter_classes(pm.data.train, classes);
        const data::Dataset user_test =
            data::filter_classes(pm.data.test, classes);
        const double kappa =
            kappa_for_classes(count, pm.data.train.num_classes);

        bench::restore(*pm.model, snapshot);
        Rng r1(1);
        const float dense_acc = bench::dense_finetune_accuracy(
            *pm.model, user_train, user_test, classes, r1);

        bench::restore(*pm.model, snapshot);
        core::CrispConfig ccfg = bench::bench_crisp_config(kappa);
        Rng r2(2);
        core::CrispPruner crisp_pruner(*pm.model, ccfg);
        crisp_pruner.run(user_train, r2);
        const float crisp_acc = nn::evaluate(*pm.model, user_test, 64, classes);
        const double crisp_flops =
            bench::flops_ratio(*pm.model, spec.input_size);

        bench::restore(*pm.model, snapshot);
        core::ChannelPruneConfig chcfg;
        // Match CRISP's *effective* FLOPs: channel fraction ~ sqrt(ratio).
        chcfg.target_sparsity = 0.5;
        chcfg.iterations = ccfg.iterations;
        chcfg.finetune_epochs = 2;
        Rng r3(3);
        core::ChannelPruner channel_pruner(*pm.model, chcfg);
        const core::ChannelPruneReport chrep =
            channel_pruner.run(user_train, r3);
        // Recovery epochs to match CRISP's budget.
        nn::TrainConfig rec;
        rec.epochs = ccfg.recovery_epochs;
        rec.batch_size = 32;
        rec.sgd.lr = 0.02f;
        rec.lr_decay = 0.92f;
        nn::train(*pm.model, user_train, rec, r3);
        const float channel_acc =
            nn::evaluate(*pm.model, user_test, 64, classes);

        std::printf("%-9lld | %9.1f%% | %9.1f%% %10.3f | %9.1f%% %10.3f | "
                    "%5.0f%%\n",
                    static_cast<long long>(count), 100 * dense_acc,
                    100 * crisp_acc, crisp_flops, 100 * channel_acc,
                    chrep.effective_flops_ratio, 100 * kappa);
      }
    }
  }
  std::printf("\npaper shape: CRISP tracks the dense-ft upper bound at far "
              "lower FLOPs and beats the channel-pruning baseline, with a "
              "mild accuracy decline as #classes grows. At this width the "
              "shape holds in full on VGG-16 (the model the paper's OCAP/"
              "CAPNN baselines report); residual/depthwise architectures "
              "favour the channel baseline at bench scale (EXPERIMENTS.md)\n");
  return 0;
}
