// Fig. 8 — "ResNet-50 layer-wise speedup and energy efficiency for
// CRISP-STC compared to NVIDIA-STC and DSTC".
//
// True ImageNet-resolution ResNet-50 layer shapes on the shared edge
// resource budget. The class-aware block pruning fixes the kept-column
// fraction per layer (ramping 50 % -> 16 % over depth: later layers prune
// harder, cf. Fig. 2) and the N:M ratio varies on top — the sweep that
// separates the paper's three bands (global κ = 1 − (K'/K)·(N/M) then
// spans ~80-90 % at 2:4). Blocks in {16, 32, 64}.
#include <cstdio>

#include "accel/report.h"
#include "common.h"

using namespace crisp;
using namespace crisp::accel;

int main() {
  bench::print_header(
      "fig8_hardware — layer-wise speedup & energy vs dense baseline",
      "Fig. 8 (CRISP-STC vs NVIDIA-STC vs DSTC, ResNet-50 layers)");

  const AcceleratorConfig config = AcceleratorConfig::edge_default();
  const EnergyModel energy = EnergyModel::edge_default();
  const auto workloads = resnet50_representative_workloads();

  std::printf("\nedge fabric: %lld tensor cores x %lld MACs, %lld KB SMEM, "
              "%.0f B/cyc SMEM bw, %.0f B/cyc DRAM bw\n",
              static_cast<long long>(config.tensor_cores),
              static_cast<long long>(config.macs_per_core),
              static_cast<long long>(config.smem_kbytes),
              config.smem_bw_bytes_per_cycle, config.dram_bw_bytes_per_cycle);

  for (const std::int64_t n : {1LL, 2LL, 3LL}) {
    for (const std::int64_t block : {16LL, 32LL, 64LL}) {
      const auto profiles =
          ramp_kept_profiles(static_cast<std::int64_t>(workloads.size()), n, 4,
                             block, 0.50, 0.16);
      const auto rows = compare_accelerators(workloads, profiles, config, energy);

      std::printf("\n### %lld:4 sparsity, block %lldx%lld\n",
                  static_cast<long long>(n), static_cast<long long>(block),
                  static_cast<long long>(block));
      print_comparison(rows);

      double max_spd = 0, min_spd = 1e30, max_eff = 0;
      for (const auto& row : rows) {
        max_spd = std::max(max_spd, row.crisp_speedup());
        min_spd = std::min(min_spd, row.crisp_speedup());
        max_eff = std::max(max_eff, row.crisp_energy_eff());
      }
      std::printf("CRISP-STC summary: speedup %.1f-%.1fx, peak energy "
                  "efficiency %.1fx\n",
                  min_spd, max_spd, max_eff);
    }
  }

  std::printf("\npaper shape: CRISP-STC ~7-14x (1:4), ~5-12x (2:4), ~2-8x "
              "(3:4); NVIDIA-STC capped at 2x; DSTC strong early, "
              "movement-bound late; block 64 best; energy up to ~30x\n");
  return 0;
}
