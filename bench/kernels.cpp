// Kernel microbenchmarks (google-benchmark): CPU SpMM throughput of every
// storage format on a hybrid-pruned ResNet-50-shaped layer. Not a paper
// figure — supporting evidence that the CRISP layout is also kernel-
// friendly on CPUs (dense work scales with kept blocks x N/M).
#include <benchmark/benchmark.h>

#include "sparse/metadata.h"
#include "sparse/nm.h"
#include "sparse/spmm.h"
#include "tensor/matmul.h"

namespace {

using namespace crisp;

constexpr std::int64_t kRows = 256;   // output channels S
constexpr std::int64_t kCols = 576;   // reduction K (64 input ch x 3x3)
constexpr std::int64_t kBatch = 64;   // output positions P
constexpr std::int64_t kBlock = 16;

Tensor hybrid_weights(std::int64_t n, std::int64_t m, double kappa) {
  Rng rng(7);
  Tensor w = Tensor::randn({kRows, kCols}, rng);
  Tensor scores = Tensor::rand({kRows, kCols}, rng, 0.01f, 1.0f);
  Tensor nm = sparse::nm_mask(as_matrix(scores, kRows, kCols), n, m);
  const std::int64_t k_prime =
      sparse::k_prime_for_sparsity(kCols, kBlock, n, m, kappa);
  const std::int64_t pruned =
      (kCols - k_prime) / kBlock;
  sparse::BlockGrid grid{kRows, kCols, kBlock};
  Tensor bscores = sparse::block_scores(as_matrix(scores, kRows, kCols), grid);
  std::vector<std::int64_t> prune(
      static_cast<std::size_t>(grid.grid_rows()), pruned);
  Tensor bmask = sparse::expand_block_mask(
      sparse::uniform_row_block_mask(bscores, grid, prune), grid);
  w.mul_(nm);
  w.mul_(bmask);
  return w;
}

Tensor activations() {
  Rng rng(9);
  return Tensor::randn({kCols, kBatch}, rng);
}

void BM_DenseGemm(benchmark::State& state) {
  Rng rng(7);
  const Tensor w = Tensor::randn({kRows, kCols}, rng);
  const Tensor x = activations();
  Tensor y({kRows, kBatch});
  for (auto _ : state) {
    matmul(as_matrix(w, kRows, kCols), as_matrix(x, kCols, kBatch),
           as_matrix(y, kRows, kBatch));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows * kCols * kBatch);
}
BENCHMARK(BM_DenseGemm);

void BM_MaskedDenseGemm(benchmark::State& state) {
  // The dense kernel on pruned weights: zero-skip branch gets the wins.
  const Tensor w = hybrid_weights(2, 4, 0.875);
  const Tensor x = activations();
  Tensor y({kRows, kBatch});
  for (auto _ : state) {
    matmul(as_matrix(w, kRows, kCols), as_matrix(x, kCols, kBatch),
           as_matrix(y, kRows, kBatch));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows * kCols * kBatch);
}
BENCHMARK(BM_MaskedDenseGemm);

void BM_CsrSpmm(benchmark::State& state) {
  const Tensor w = hybrid_weights(2, 4, 0.875);
  const auto csr = sparse::CsrMatrix::encode(as_matrix(w, kRows, kCols));
  const Tensor x = activations();
  Tensor y({kRows, kBatch});
  for (auto _ : state) {
    csr.spmm(as_matrix(x, kCols, kBatch), as_matrix(y, kRows, kBatch));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * csr.nnz() * kBatch);
}
BENCHMARK(BM_CsrSpmm);

void BM_EllpackSpmm(benchmark::State& state) {
  const Tensor w = hybrid_weights(2, 4, 0.875);
  const auto ell = sparse::EllpackMatrix::encode(as_matrix(w, kRows, kCols));
  const Tensor x = activations();
  Tensor y({kRows, kBatch});
  for (auto _ : state) {
    ell.spmm(as_matrix(x, kCols, kBatch), as_matrix(y, kRows, kBatch));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows * ell.width() * kBatch);
}
BENCHMARK(BM_EllpackSpmm);

void BM_BlockedEllSpmm(benchmark::State& state) {
  const Tensor w = hybrid_weights(4, 4, 0.5);  // block-only pattern
  const auto bell =
      sparse::BlockedEllMatrix::encode(as_matrix(w, kRows, kCols), kBlock);
  const Tensor x = activations();
  Tensor y({kRows, kBatch});
  for (auto _ : state) {
    bell.spmm(as_matrix(x, kCols, kBatch), as_matrix(y, kRows, kBatch));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows * kCols * kBatch / 2);
}
BENCHMARK(BM_BlockedEllSpmm);

void BM_CrispSpmm(benchmark::State& state) {
  const Tensor w = hybrid_weights(2, 4, 0.875);
  const auto cm =
      sparse::CrispMatrix::encode(as_matrix(w, kRows, kCols), kBlock, 2, 4);
  const Tensor x = activations();
  Tensor y({kRows, kBatch});
  for (auto _ : state) {
    cm.spmm(as_matrix(x, kCols, kBatch), as_matrix(y, kRows, kBatch));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * cm.slot_count() * kBatch);
}
BENCHMARK(BM_CrispSpmm);

}  // namespace

BENCHMARK_MAIN();
