// Kernel microbenchmarks (google-benchmark): CPU GEMM/SpMM throughput of
// every storage format on a hybrid-pruned ResNet-50-shaped layer, swept
// over the kernel-layer thread count (the Arg is kernels::set_num_threads).
// Not a paper figure — supporting evidence that the CRISP layout is also
// kernel-friendly on CPUs (dense work scales with kept blocks x N/M), and
// the measurement behind the "threading helps, it isn't asserted" claim.
//
// The *Scalar single-thread variants force the scalar dispatch tier, so
// one JSON records the SIMD-vs-scalar speedup next to the thread sweep
// (every entry is labelled with the tier it ran on). CI's regression gate
// (tools/compare_bench.py) compares the threads:1 medians against the
// committed BENCH_kernels.json.
//
// Record a baseline with:
//   ./bench_kernels --benchmark_repetitions=5 \
//                   --benchmark_report_aggregates_only=true \
//                   --benchmark_out=BENCH_kernels.json \
//                   --benchmark_out_format=json
#include <benchmark/benchmark.h>

#include "kernels/parallel_for.h"
#include "kernels/simd_dispatch.h"
#include "sparse/metadata.h"
#include "sparse/nm.h"
#include "sparse/spmm.h"
#include "tensor/matmul.h"

namespace {

using namespace crisp;

constexpr std::int64_t kRows = 256;   // output channels S
constexpr std::int64_t kCols = 576;   // reduction K (64 input ch x 3x3)
constexpr std::int64_t kBatch = 64;   // output positions P
constexpr std::int64_t kBlock = 16;

// Thread counts every kernel bench sweeps; results must be identical, only
// the time may move (see tests/test_kernels.cpp for the identity half).
// Wall-clock timing: CPU time only counts the calling thread, which would
// make pool workers look like free throughput.
void thread_sweep(benchmark::internal::Benchmark* b) {
  b->ArgName("threads");
  b->UseRealTime();
  for (const int t : {1, 2, 4, 8}) b->Arg(t);
}

Tensor hybrid_weights(std::int64_t n, std::int64_t m, double kappa) {
  Rng rng(7);
  Tensor w = Tensor::randn({kRows, kCols}, rng);
  Tensor scores = Tensor::rand({kRows, kCols}, rng, 0.01f, 1.0f);
  Tensor nm = sparse::nm_mask(as_matrix(scores, kRows, kCols), n, m);
  const std::int64_t k_prime =
      sparse::k_prime_for_sparsity(kCols, kBlock, n, m, kappa);
  const std::int64_t pruned =
      (kCols - k_prime) / kBlock;
  sparse::BlockGrid grid{kRows, kCols, kBlock};
  Tensor bscores = sparse::block_scores(as_matrix(scores, kRows, kCols), grid);
  std::vector<std::int64_t> prune(
      static_cast<std::size_t>(grid.grid_rows()), pruned);
  Tensor bmask = sparse::expand_block_mask(
      sparse::uniform_row_block_mask(bscores, grid, prune), grid);
  w.mul_(nm);
  w.mul_(bmask);
  return w;
}

Tensor activations() {
  Rng rng(9);
  return Tensor::randn({kCols, kBatch}, rng);
}

/// Labels every run with the dispatch tier it measured ("avx2", "scalar",
/// ...), so the JSON is self-describing on any host.
void label_tier(benchmark::State& state) {
  state.SetLabel(kernels::simd::tier_name(kernels::simd::active_tier()));
}

void run_dense_gemm(benchmark::State& state, const Tensor& w) {
  const Tensor x = activations();
  Tensor y({kRows, kBatch});
  label_tier(state);
  for (auto _ : state) {
    matmul(as_matrix(w, kRows, kCols), as_matrix(x, kCols, kBatch),
           as_matrix(y, kRows, kBatch));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows * kCols * kBatch);
}

Tensor dense_weights() {
  Rng rng(7);
  return Tensor::randn({kRows, kCols}, rng);
}

void BM_DenseGemm(benchmark::State& state) {
  kernels::set_num_threads(static_cast<int>(state.range(0)));
  run_dense_gemm(state, dense_weights());
  kernels::set_num_threads(0);
}
BENCHMARK(BM_DenseGemm)->Apply(thread_sweep);

void BM_DenseGemmScalar(benchmark::State& state) {
  // Single-thread scalar tier: the denominator of the SIMD speedup claim.
  kernels::simd::TierScope scalar(kernels::simd::Tier::kScalar);
  kernels::set_num_threads(1);
  run_dense_gemm(state, dense_weights());
  kernels::set_num_threads(0);
}
BENCHMARK(BM_DenseGemmScalar)->ArgName("threads")->Arg(1)->UseRealTime();

void BM_DenseGemmTn(benchmark::State& state) {
  // Transposed-A GEMM: the packed-A panel fixes this kernel's strided reads.
  kernels::set_num_threads(static_cast<int>(state.range(0)));
  Rng rng(7);
  const Tensor w = Tensor::randn({kCols, kRows}, rng);  // stored K x M
  const Tensor x = activations();
  Tensor y({kRows, kBatch});
  label_tier(state);
  for (auto _ : state) {
    matmul_tn(as_matrix(w, kCols, kRows), as_matrix(x, kCols, kBatch),
              as_matrix(y, kRows, kBatch));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows * kCols * kBatch);
  kernels::set_num_threads(0);
}
BENCHMARK(BM_DenseGemmTn)->Apply(thread_sweep);

void BM_MaskedDenseGemm(benchmark::State& state) {
  // The dense kernel on pruned weights: zero-skip branch gets the wins.
  kernels::set_num_threads(static_cast<int>(state.range(0)));
  run_dense_gemm(state, hybrid_weights(2, 4, 0.875));
  kernels::set_num_threads(0);
}
BENCHMARK(BM_MaskedDenseGemm)->Apply(thread_sweep);

void BM_MaskedDenseGemmScalar(benchmark::State& state) {
  kernels::simd::TierScope scalar(kernels::simd::Tier::kScalar);
  kernels::set_num_threads(1);
  run_dense_gemm(state, hybrid_weights(2, 4, 0.875));
  kernels::set_num_threads(0);
}
BENCHMARK(BM_MaskedDenseGemmScalar)->ArgName("threads")->Arg(1)->UseRealTime();

/// Shared loop for every SpmmKernel implementation: the format only changes
/// the encode step, the measured call is the polymorphic interface.
void run_spmm(benchmark::State& state, const kernels::SpmmKernel& kernel,
              std::int64_t items_per_iter) {
  kernels::set_num_threads(static_cast<int>(state.range(0)));
  const Tensor x = activations();
  Tensor y({kRows, kBatch});
  label_tier(state);
  for (auto _ : state) {
    kernel.spmm(as_matrix(x, kCols, kBatch), as_matrix(y, kRows, kBatch));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * items_per_iter);
  kernels::set_num_threads(0);
}

void BM_CsrSpmm(benchmark::State& state) {
  const Tensor w = hybrid_weights(2, 4, 0.875);
  const auto csr = sparse::CsrMatrix::encode(as_matrix(w, kRows, kCols));
  run_spmm(state, csr, csr.nnz() * kBatch);
}
BENCHMARK(BM_CsrSpmm)->Apply(thread_sweep);

void BM_EllpackSpmm(benchmark::State& state) {
  const Tensor w = hybrid_weights(2, 4, 0.875);
  const auto ell = sparse::EllpackMatrix::encode(as_matrix(w, kRows, kCols));
  run_spmm(state, ell, kRows * ell.width() * kBatch);
}
BENCHMARK(BM_EllpackSpmm)->Apply(thread_sweep);

void BM_BlockedEllSpmm(benchmark::State& state) {
  const Tensor w = hybrid_weights(4, 4, 0.5);  // block-only pattern
  const auto bell =
      sparse::BlockedEllMatrix::encode(as_matrix(w, kRows, kCols), kBlock);
  run_spmm(state, bell, kRows * kCols * kBatch / 2);
}
BENCHMARK(BM_BlockedEllSpmm)->Apply(thread_sweep);

void BM_CrispSpmm(benchmark::State& state) {
  const Tensor w = hybrid_weights(2, 4, 0.875);
  const auto cm =
      sparse::CrispMatrix::encode(as_matrix(w, kRows, kCols), kBlock, 2, 4);
  run_spmm(state, cm, cm.slot_count() * kBatch);
}
BENCHMARK(BM_CrispSpmm)->Apply(thread_sweep);

void BM_CrispSpmmScalar(benchmark::State& state) {
  kernels::simd::TierScope scalar(kernels::simd::Tier::kScalar);
  const Tensor w = hybrid_weights(2, 4, 0.875);
  const auto cm =
      sparse::CrispMatrix::encode(as_matrix(w, kRows, kCols), kBlock, 2, 4);
  run_spmm(state, cm, cm.slot_count() * kBatch);
}
BENCHMARK(BM_CrispSpmmScalar)->ArgName("threads")->Arg(1)->UseRealTime();

void BM_CrispSpmmQuantized(benchmark::State& state) {
  // The int8 payload path (dequantize-on-the-fly axpy_i8): same metadata,
  // a quarter of the weight-value bytes. The payload counters record the
  // bandwidth story next to the timing one.
  const Tensor w = hybrid_weights(2, 4, 0.875);
  auto cm =
      sparse::CrispMatrix::encode(as_matrix(w, kRows, kCols), kBlock, 2, 4);
  const double fp32_payload_bytes =
      static_cast<double>(cm.payload_bits()) / 8.0;
  cm.quantize_payload();
  cm.release_fp32_payload();
  state.counters["payload_fp32_bytes"] = fp32_payload_bytes;
  state.counters["payload_int8_bytes"] =
      static_cast<double>(cm.payload_bits()) / 8.0;
  run_spmm(state, cm, cm.slot_count() * kBatch);
}
BENCHMARK(BM_CrispSpmmQuantized)->Apply(thread_sweep);

}  // namespace

BENCHMARK_MAIN();
