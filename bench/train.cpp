// Training/pruning hot-path benchmarks (google-benchmark, linked into
// bench_kernels so the entries land in the same JSON the CI regression gate
// reads): batch-parallel backward for the two GEMM layers, the SGD update,
// and the class-aware saliency sweep (forward + backward + score
// elementwise) that dominates CRISP's pruning wall-clock.
//
// Every entry sweeps the kernel-layer thread count; results are
// bit-identical across the sweep (tests/test_backward_threading.cpp is the
// identity half), only the time may move. threads:1 medians are the stable
// entries CI gates — thread-sweep numbers depend on the runner's cores, and
// on a 1-core recording container they document the dispatch overhead
// floor, not scaling.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/saliency.h"
#include "data/class_pattern.h"
#include "kernels/parallel_for.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/models/common.h"
#include "nn/optimizer.h"

namespace {

using namespace crisp;

void train_threads(benchmark::internal::Benchmark* b) {
  b->ArgName("threads");
  b->UseRealTime();  // wall clock: pool workers are the product
  for (const int t : {1, 2, 4, 8}) b->Arg(t);
}

// ResNet-50-ish mid-stage shapes, matched to bench/kernels.cpp: the Linear
// mirrors the (S x K) GEMM the conv lowers to, the Conv2d is a 3x3 stage.
constexpr std::int64_t kBatch = 32;
constexpr std::int64_t kIn = 576, kOut = 256;

void BM_BackwardLinear(benchmark::State& state) {
  kernels::set_num_threads(static_cast<int>(state.range(0)));
  Rng rng(3);
  nn::Linear layer("lin", kIn, kOut, rng, /*bias=*/true);
  const Tensor x = Tensor::randn({kBatch, kIn}, rng);
  const Tensor y = layer.forward(x, /*train=*/true);
  const Tensor gout = Tensor::randn(y.shape(), rng);
  for (auto _ : state) {
    layer.zero_grad();
    Tensor gin = layer.backward(gout);
    benchmark::DoNotOptimize(gin.data());
  }
  // dW (tn) + dx (nn) GEMMs per iteration.
  state.SetItemsProcessed(state.iterations() * 2 * kBatch * kIn * kOut);
  kernels::set_num_threads(0);
}
BENCHMARK(BM_BackwardLinear)->Apply(train_threads);

void BM_BackwardConv2d(benchmark::State& state) {
  kernels::set_num_threads(static_cast<int>(state.range(0)));
  nn::Conv2dSpec spec;
  spec.in_channels = 64;
  spec.out_channels = 64;
  spec.kernel = 3;
  spec.bias = true;
  Rng rng(5);
  nn::Conv2d layer("conv", spec, rng);
  const Tensor x = Tensor::randn({16, 64, 8, 8}, rng);
  const Tensor y = layer.forward(x, /*train=*/true);
  const Tensor gout = Tensor::randn(y.shape(), rng);
  for (auto _ : state) {
    layer.zero_grad();
    Tensor gin = layer.backward(gout);
    benchmark::DoNotOptimize(gin.data());
  }
  // Two GEMMs (dW, dcols) of S x K x P per sample per iteration.
  state.SetItemsProcessed(state.iterations() * 2 * 16 * 64 * (64 * 9) *
                          (8 * 8));
  kernels::set_num_threads(0);
}
BENCHMARK(BM_BackwardConv2d)->Apply(train_threads);

void BM_SgdStep(benchmark::State& state) {
  kernels::set_num_threads(static_cast<int>(state.range(0)));
  Rng rng(7);
  nn::Parameter p;
  p.name = "w";
  p.value = Tensor::randn({kOut, kIn}, rng);
  p.grad = Tensor::randn({kOut, kIn}, rng);
  nn::Sgd opt({&p}, nn::SgdConfig{});
  for (auto _ : state) {
    opt.step();
    benchmark::DoNotOptimize(p.value.data());
  }
  state.SetItemsProcessed(state.iterations() * p.value.numel());
  kernels::set_num_threads(0);
}
BENCHMARK(BM_SgdStep)->Apply(train_threads);

void BM_SaliencySweep(benchmark::State& state) {
  kernels::set_num_threads(static_cast<int>(state.range(0)));
  // CASS on a thin VGG: calibration forward/backward passes plus the
  // |grad| * |weight| sweep over every prunable parameter — the Algorithm 1
  // step the pruning loop repeats every iteration.
  nn::ModelConfig mcfg;
  mcfg.num_classes = 8;
  mcfg.input_size = 8;
  mcfg.width_mult = 0.25f;
  auto model = nn::make_vgg16(mcfg);

  data::ClassPatternConfig dcfg;
  dcfg.num_classes = 8;
  dcfg.image_size = 8;
  dcfg.train_per_class = 8;
  dcfg.test_per_class = 1;
  const data::TrainTest split = data::make_class_pattern_dataset(dcfg);

  core::SaliencyConfig cfg;
  cfg.batch_size = 16;
  cfg.max_batches = 2;
  std::int64_t weights = 0;
  for (const nn::Parameter* p : model->prunable_parameters())
    weights += p->value.numel();
  for (auto _ : state) {
    core::SaliencyMap scores = core::estimate_saliency(*model, split.train, cfg);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * weights);
  kernels::set_num_threads(0);
}
BENCHMARK(BM_SaliencySweep)->Apply(train_threads);

}  // namespace
