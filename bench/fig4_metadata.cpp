// Fig. 4 (right) — "Metadata storage for different formats".
//
// On hybrid-pruned weights, CSR and ELLPACK pay per-non-zero column
// indices (the paper quotes roughly 5x and 7x CRISP's metadata); the CRISP
// layout needs only block-column ids plus 2-bit intra-group offsets.
// Measured on the true ImageNet ResNet-50 layer shapes — no training.
#include "accel/workload.h"
#include "common.h"
#include "sparse/metadata.h"
#include "sparse/nm.h"
#include "sparse/spmm.h"

using namespace crisp;

namespace {

/// Hybrid-pruned random matrix at the given pattern.
Tensor make_hybrid(std::int64_t rows, std::int64_t cols, std::int64_t block,
                   std::int64_t n, std::int64_t m, double kappa, Rng& rng) {
  const std::int64_t k_prime =
      sparse::k_prime_for_sparsity(cols, block, n, m, kappa);
  const std::int64_t pruned_blocks =
      (cols + block - 1) / block - (k_prime + block - 1) / block;

  Tensor w = Tensor::randn({rows, cols}, rng);
  Tensor scores = Tensor::rand({rows, cols}, rng, 0.01f, 1.0f);
  Tensor nm = sparse::nm_mask(as_matrix(scores, rows, cols), n, m);
  sparse::BlockGrid grid{rows, cols, block};
  Tensor bscores = sparse::block_scores(as_matrix(scores, rows, cols), grid);
  std::vector<std::int64_t> prune(
      static_cast<std::size_t>(grid.grid_rows()), pruned_blocks);
  Tensor bmask = sparse::expand_block_mask(
      sparse::uniform_row_block_mask(bscores, grid, prune), grid);
  w.mul_(nm);
  w.mul_(bmask);
  return w;
}

}  // namespace

int main() {
  bench::print_header("fig4_metadata — metadata bits per storage format",
                      "Fig. 4 right (CSR / ELLPACK vs CRISP metadata)");

  const std::int64_t n = 2, m = 4, block = 16;
  const double kappa = 0.875;
  Rng rng(5);

  // Representative true ResNet-50 shapes, plus the whole-network total.
  const auto layers = accel::resnet50_representative_workloads();

  std::printf("\npattern: %lld:%lld, B = %lld, kappa = %.1f%%\n",
              static_cast<long long>(n), static_cast<long long>(m),
              static_cast<long long>(block), 100 * kappa);
  std::printf("%-16s %10s | %12s %12s %12s | %8s %8s\n", "layer", "S x K",
              "CRISP KiB", "CSR KiB", "ELLPACK KiB", "CSR/x", "ELL/x");

  double total_crisp = 0, total_csr = 0, total_ell = 0;
  for (const auto& wl : layers) {
    if (wl.k < 2 * block) continue;  // too narrow to block-prune
    const Tensor w = make_hybrid(wl.s, wl.k, block, n, m, kappa, rng);
    const auto mat = as_matrix(w, wl.s, wl.k);
    const double crisp_bits = static_cast<double>(
        sparse::CrispMatrix::encode(mat, block, n, m).metadata_bits());
    const double csr_bits =
        static_cast<double>(sparse::CsrMatrix::encode(mat).metadata_bits());
    const double ell_bits = static_cast<double>(
        sparse::EllpackMatrix::encode(mat).metadata_bits());
    total_crisp += crisp_bits;
    total_csr += csr_bits;
    total_ell += ell_bits;

    char shape[32];
    std::snprintf(shape, sizeof shape, "%lldx%lld",
                  static_cast<long long>(wl.s), static_cast<long long>(wl.k));
    std::printf("%-16s %10s | %12.1f %12.1f %12.1f | %7.2fx %7.2fx\n",
                wl.name.c_str(), shape, crisp_bits / 8192.0, csr_bits / 8192.0,
                ell_bits / 8192.0, csr_bits / crisp_bits,
                ell_bits / crisp_bits);
  }
  std::printf("%-16s %10s | %12.1f %12.1f %12.1f | %7.2fx %7.2fx\n", "TOTAL",
              "", total_crisp / 8192.0, total_csr / 8192.0, total_ell / 8192.0,
              total_csr / total_crisp, total_ell / total_crisp);

  // Bytes-per-payload: the bandwidth story the int8 payload adds on top of
  // the metadata story (docs/formats.md). int8 = 8 bits per slot + one
  // fp32 scale per block-row; fp32 = 32 bits per slot.
  std::printf("\nvalue payload (CRISP slots, fp32 vs quantized int8)\n");
  std::printf("%-16s %10s | %12s %12s | %8s\n", "layer", "S x K", "fp32 KiB",
              "int8 KiB", "ratio");
  double total_fp32 = 0, total_int8 = 0;
  Rng prng(5);
  for (const auto& wl : layers) {
    if (wl.k < 2 * block) continue;
    const Tensor w = make_hybrid(wl.s, wl.k, block, n, m, kappa, prng);
    auto cm = sparse::CrispMatrix::encode(as_matrix(w, wl.s, wl.k), block, n, m);
    const double fp32_bits = static_cast<double>(cm.payload_bits());
    cm.quantize_payload();
    cm.release_fp32_payload();
    const double int8_bits = static_cast<double>(cm.payload_bits());
    total_fp32 += fp32_bits;
    total_int8 += int8_bits;
    char shape[32];
    std::snprintf(shape, sizeof shape, "%lldx%lld",
                  static_cast<long long>(wl.s), static_cast<long long>(wl.k));
    std::printf("%-16s %10s | %12.1f %12.1f | %7.2fx\n", wl.name.c_str(),
                shape, fp32_bits / 8192.0, int8_bits / 8192.0,
                fp32_bits / int8_bits);
  }
  std::printf("%-16s %10s | %12.1f %12.1f | %7.2fx\n", "TOTAL", "",
              total_fp32 / 8192.0, total_int8 / 8192.0,
              total_fp32 / total_int8);

  // Paper closed-form check on one canonical layer.
  const auto& wl = layers[4];  // conv4_3.conv2
  const std::int64_t kp = sparse::k_prime_for_sparsity(wl.k, block, n, m, kappa);
  std::printf("\npaper formulas on %s: block bits = %lld, N:M bits = %lld, "
              "avg sparsity = %.3f\n",
              wl.name.c_str(),
              static_cast<long long>(
                  sparse::paper_block_metadata_bits(wl.s, kp, block)),
              static_cast<long long>(
                  sparse::paper_nm_metadata_bits(wl.s, kp, n, m)),
              sparse::paper_average_sparsity(wl.k, kp, n, m));
  std::printf("paper shape: CSR ~5x and ELLPACK ~7x CRISP's metadata\n");
  return 0;
}
