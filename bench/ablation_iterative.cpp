// Ablation — iterative pruning vs one-shot (§III-C).
//
// Algorithm 1 raises the sparsity target over n iterations with δ epochs of
// fine-tuning between, "instead of pruning a large percentage of weights in
// a single iteration", to avoid layer collapse. Equal total epoch budget.
#include "common.h"

using namespace crisp;

int main() {
  bench::print_header("ablation_iterative — one-shot vs iterative schedules",
                      "§III-C (iterative pruning prevents layer collapse)");

  const nn::ZooSpec spec =
      bench::bench_spec(nn::ModelKind::kResNet50, nn::DatasetKind::kImageNetLike);
  nn::PretrainedModel pm = nn::zoo_pretrained(spec, /*verbose=*/true);
  const TensorMap snapshot = pm.model->state_dict();

  Rng crng(11);
  const auto classes = data::sample_user_classes(pm.data.train.num_classes,
                                                 10, crng);
  const data::Dataset user_train = data::filter_classes(pm.data.train, classes);
  const data::Dataset user_test = data::filter_classes(pm.data.test, classes);

  const double kappa = 0.92;
  const std::int64_t total_epochs = 18;

  std::printf("\n%-12s %10s %10s %16s\n", "iterations", "accuracy",
              "sparsity", "max layer sp.");
  for (std::int64_t iters : {1LL, 3LL, 6LL}) {
    bench::restore(*pm.model, snapshot);
    core::CrispConfig cfg = bench::bench_crisp_config(kappa);
    cfg.iterations = iters;
    cfg.finetune_epochs = 2;
    cfg.recovery_epochs = total_epochs - 2 * iters;  // equal total budget
    Rng rng(9);
    core::CrispPruner pruner(*pm.model, cfg);
    const core::PruneReport report = pruner.run(user_train, rng);
    const float acc = nn::evaluate(*pm.model, user_test, 64, classes);
    std::printf("%-12lld %9.1f%% %9.1f%% %15.1f%%\n",
                static_cast<long long>(iters), 100 * acc,
                100 * report.achieved_sparsity(),
                100 * report.census.max_layer_sparsity());
  }
  std::printf("\nexpected: gradual schedules match or beat one-shot at "
              "equal epoch budget, especially at high kappa\n");
  return 0;
}
