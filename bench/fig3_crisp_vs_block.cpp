// Fig. 3 — "CRISP against block sparsity on ImageNet".
//
// Pure coarse block pruning collapses once global sparsity passes ~80 %;
// CRISP's hybrid pattern holds accuracy deep into the 90s. The paper runs
// ten user classes on ImageNet; we use 25 classes of the harder
// ImageNet-like synthetic preset so the task is not trivially recoverable
// at bench scale.
//
// Block sizes are width-scaled: the paper sweeps B in 16..64 on full-width
// ResNet-50 (reshaped matrices up to 2048 columns); our bench models are
// width-0.125, so B in {4, 8, 16} probes the same block-to-matrix
// granularity ratios. Every cell reports the sparsity the pruner actually
// achieved, because at coarse granularity the layer-collapse guard can stop
// block-only pruning short of its target — itself a finding of the figure
// (coarse blocks cannot even *express* extreme sparsity on narrow layers).
//
// Known scale limitation (EXPERIMENTS.md): beyond ~90 % sparsity these
// narrow matrices keep only 1-2 half-dense block-columns per layer, and
// the hybrid's ordering over block-only inverts — verified not to be a
// recovery-budget artifact. The paper's regime (8x wider matrices) keeps
// dozens of surviving columns at the same kappa.
#include "common.h"
#include "core/baselines/block_pruner.h"

using namespace crisp;

int main() {
  bench::print_header("fig3_crisp_vs_block — hybrid vs pure block pruning",
                      "Fig. 3 (CRISP vs block sparsity, user-class subset)");

  const nn::ZooSpec spec =
      bench::bench_spec(nn::ModelKind::kResNet50, nn::DatasetKind::kImageNetLike);
  nn::PretrainedModel pm = nn::zoo_pretrained(spec, /*verbose=*/true);
  const TensorMap snapshot = pm.model->state_dict();

  Rng crng(11);
  const auto classes = data::sample_user_classes(pm.data.train.num_classes,
                                                 25, crng);
  const data::Dataset user_train = data::filter_classes(pm.data.train, classes);
  const data::Dataset user_test = data::filter_classes(pm.data.test, classes);

  const std::vector<double> kappas =
      bench::fast_mode() ? std::vector<double>{0.80, 0.92}
                         : std::vector<double>{0.75, 0.85, 0.92, 0.96};

  struct Series {
    const char* label;
    std::int64_t n, m, block;
    bool hybrid;
  };
  const Series series[] = {
      {"crisp 2:4 B=8", 2, 4, 8, true},
      {"crisp 1:4 B=16", 1, 4, 16, true},
      {"block-only B=4", 1, 1, 4, false},
      {"block-only B=8", 1, 1, 8, false},
  };

  std::printf("\neach cell: accuracy%% (achieved sparsity)\n");
  std::printf("%-10s", "kappa");
  for (const Series& s : series) std::printf(" %18s", s.label);
  std::printf("\n");

  for (double kappa : kappas) {
    std::printf("%-9.0f%%", 100 * kappa);
    for (const Series& s : series) {
      bench::restore(*pm.model, snapshot);
      core::CrispConfig cfg = s.hybrid
                                  ? bench::bench_crisp_config(kappa, s.n, s.m,
                                                              s.block)
                                  : core::block_pruning_config(
                                        s.block, kappa,
                                        bench::fast_mode() ? 2 : 3, 2);
      if (!s.hybrid)
        cfg.recovery_epochs = bench::bench_crisp_config(kappa).recovery_epochs;
      Rng rng(4);
      core::CrispPruner pruner(*pm.model, cfg);
      const core::PruneReport report = pruner.run(user_train, rng);
      const float acc = nn::evaluate(*pm.model, user_test, 64, classes);
      std::printf("     %5.1f%% (%4.2f)", 100 * acc,
                  report.achieved_sparsity());
    }
    std::printf("\n");
  }
  std::printf("\npaper shape: block-only decays steeply past ~80%%; CRISP "
              "holds high accuracy beyond 92%%\n");
  return 0;
}
