// Fig. 1 — "Models at different N:M ratios".
//
// The paper's observation: heavily over-parameterised models (ResNet-50)
// tolerate aggressive fine-grained N:M sparsity, while compact models
// (MobileNetV2) open an accuracy gap as N:M tightens from 3:4 to 1:4.
// This figure is about the *universal* model (no class personalisation),
// so the sweep trains and evaluates on the full class distribution — the
// hardest task the substrate offers, which is exactly where compactness
// starts to cost accuracy.
#include "common.h"

using namespace crisp;

int main() {
  bench::print_header("fig1_nm_ratios — accuracy at fixed N:M ratios",
                      "Fig. 1 (models at different N:M ratios)");

  struct Row {
    nn::ModelKind kind;
    float dense = 0, r34 = 0, r24 = 0, r14 = 0;
  };
  std::vector<Row> rows;

  for (nn::ModelKind kind :
       {nn::ModelKind::kResNet50, nn::ModelKind::kVgg16,
        nn::ModelKind::kMobileNetV2}) {
    const nn::ZooSpec spec = bench::bench_spec(kind, nn::DatasetKind::kCifar100Like);
    nn::PretrainedModel pm = nn::zoo_pretrained(spec, /*verbose=*/true);
    const TensorMap snapshot = pm.model->state_dict();

    Row row;
    row.kind = kind;
    {
      // Dense upper bound: continued training on the full distribution with
      // the same extra budget the pruned runs get below.
      Rng rng(1);
      row.dense = bench::dense_finetune_accuracy(*pm.model, pm.data.train,
                                                 pm.data.test, {}, rng);
    }
    auto run_nm = [&](std::int64_t n) {
      bench::restore(*pm.model, snapshot);
      core::CrispConfig cfg = bench::bench_crisp_config(0.0, n, 4);
      cfg.enable_block = false;   // fine-grained component only
      cfg.iterations = 1;
      cfg.target_sparsity = 1.0 - static_cast<double>(n) / 4.0;
      Rng rng(2);
      core::CrispPruner pruner(*pm.model, cfg);
      pruner.run(pm.data.train, rng);
      return nn::evaluate(*pm.model, pm.data.test, 64);
    };
    row.r34 = run_nm(3);
    row.r24 = run_nm(2);
    row.r14 = run_nm(1);
    rows.push_back(row);
  }

  std::printf("\n%-14s %8s %8s %8s %8s %14s\n", "model", "dense", "3:4",
              "2:4", "1:4", "gap(dense-1:4)");
  for (const Row& row : rows)
    std::printf("%-14s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %13.1f%%\n",
                nn::model_kind_name(row.kind), 100 * row.dense, 100 * row.r34,
                100 * row.r24, 100 * row.r14, 100 * (row.dense - row.r14));
  std::printf("\npaper shape: the gap grows as models get more compact "
              "(ResNet-50 < VGG-16 < MobileNetV2)\n");
  return 0;
}
