// Ablation — the pruning metric (§III-D).
//
// Replaces the class-aware gradient saliency (CASS) with magnitude and
// random scores at a fixed 90 % target: the design claim is that
// class-aware scores retain the weights the user's classes need.
#include "common.h"

using namespace crisp;

int main() {
  bench::print_header("ablation_saliency — CASS vs magnitude vs random",
                      "§III-D design choice (class-aware saliency score)");

  const nn::ZooSpec spec =
      bench::bench_spec(nn::ModelKind::kResNet50, nn::DatasetKind::kImageNetLike);
  nn::PretrainedModel pm = nn::zoo_pretrained(spec, /*verbose=*/true);
  const TensorMap snapshot = pm.model->state_dict();

  Rng crng(11);
  const auto classes = data::sample_user_classes(pm.data.train.num_classes,
                                                 10, crng);
  const data::Dataset user_train = data::filter_classes(pm.data.train, classes);
  const data::Dataset user_test = data::filter_classes(pm.data.test, classes);

  std::printf("\n%-12s %10s %14s\n", "saliency", "accuracy", "sparsity");
  for (const char* criterion : {"cass", "magnitude", "random"}) {
    bench::restore(*pm.model, snapshot);
    core::CrispConfig cfg = bench::bench_crisp_config(0.90);
    cfg.saliency.criterion = criterion;
    Rng rng(6);
    core::CrispPruner pruner(*pm.model, cfg);
    const core::PruneReport report = pruner.run(user_train, rng);
    const float acc = nn::evaluate(*pm.model, user_test, 64, classes);
    std::printf("%-12s %9.1f%% %13.1f%%\n", criterion,
                100 * acc, 100 * report.achieved_sparsity());
  }
  std::printf("\nexpected: cass >= magnitude > random at matched sparsity\n");
  return 0;
}
