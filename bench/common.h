// Shared plumbing for the figure-reproduction benches.
//
// Every training bench runs at a single "bench scale" (width-0.125 models,
// 16 px inputs, 16 train samples per class) so the whole suite finishes on
// one CPU core in minutes. CRISP_BENCH_FAST=1 halves the sweeps for smoke
// runs. Pre-trained universal models come from the zoo cache and are
// restored from a state_dict snapshot between pruning runs, so every run
// starts from identical weights.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/pruner.h"
#include "nn/flops.h"
#include "nn/zoo.h"

namespace crisp::bench {

inline bool fast_mode() {
  const char* env = std::getenv("CRISP_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

inline nn::ZooSpec bench_spec(nn::ModelKind model, nn::DatasetKind dataset) {
  nn::ZooSpec spec;
  spec.model = model;
  spec.dataset = dataset;
  spec.width_mult = 0.125f;
  spec.input_size = 16;
  spec.pretrain_epochs = fast_mode() ? 6 : 12;
  spec.train_per_class = 16;
  spec.test_per_class = 8;
  return spec;
}

/// Restores pre-training weights and drops any masks from a previous run.
inline void restore(nn::Sequential& model, const TensorMap& snapshot) {
  nn::clear_masks(model);
  model.load_state_dict(snapshot);
}

/// Fine-tunes the dense model on the user classes — the paper's accuracy
/// upper bound in Fig. 7.
inline float dense_finetune_accuracy(nn::Sequential& model,
                                     const data::Dataset& user_train,
                                     const data::Dataset& user_test,
                                     const std::vector<std::int64_t>& classes,
                                     Rng& rng) {
  // Budget matched to a CRISP run (iterations*finetune + recovery) so the
  // dense row really is the upper bound, not an under-trained strawman.
  nn::TrainConfig tc;
  tc.epochs = fast_mode() ? 10 : 16;
  tc.batch_size = 32;
  tc.sgd.lr = 0.02f;
  tc.lr_decay = 0.92f;
  nn::train(model, user_train, tc, rng);
  return nn::evaluate(model, user_test, 64, classes);
}

/// Default CRISP config at bench scale.
inline core::CrispConfig bench_crisp_config(double kappa, std::int64_t n = 2,
                                            std::int64_t m = 4,
                                            std::int64_t block = 16) {
  core::CrispConfig cfg;
  cfg.n = n;
  cfg.m = m;
  cfg.block = block;
  cfg.target_sparsity = kappa;
  cfg.iterations = fast_mode() ? 2 : 3;
  cfg.finetune_epochs = 2;
  cfg.recovery_epochs = fast_mode() ? 8 : 12;
  return cfg;
}

/// FLOPs ratio after pruning (1 = dense).
inline double flops_ratio(nn::Sequential& model, std::int64_t input_size) {
  return nn::count_flops(model, {1, 3, input_size, input_size}).ratio();
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

}  // namespace crisp::bench
