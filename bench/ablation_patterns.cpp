// Ablation — sparsity *pattern* at matched budget: what does each pattern
// buy in accuracy, and what does it cost on STC-class hardware?
//
// Five patterns, one saliency metric, one training pipeline, one global
// budget (90 % except where the pattern itself caps lower):
//   unstructured     — accuracy upper bound, no hardware win (§I)
//   channel (OCAP)   — hardware-trivial, accuracy collapses (§I, Fig. 7)
//   layer-wise N:M   — DominoSearch-style per-layer ratios; capped at
//                      1 - 1/M sparsity, one hyperparameter per layer (§I)
//   block-only       — hardware-friendly, accuracy decays > 80 % (Fig. 3)
//   CRISP hybrid     — the paper's point: both columns at once
//
// The hardware columns run the real ImageNet ResNet-50 layer shapes on the
// edge fabric; each pattern is mapped to the execution model it affords
// (unstructured cannot skip on an STC; channels shrink the dense GEMM;
// the rest use the sparse datapaths).
#include <algorithm>

#include "accel/report.h"
#include "common.h"
#include "core/baselines/block_pruner.h"
#include "core/baselines/channel_pruner.h"
#include "core/baselines/layerwise_nm.h"
#include "core/baselines/unstructured_pruner.h"

using namespace crisp;

namespace {

struct PatternResult {
  const char* label;
  double achieved = 0.0;
  float accuracy = 0.0f;
  double flops_ratio = 1.0;
  double speedup = 1.0;     ///< end-to-end cycles, dense / pattern
  double energy_eff = 1.0;  ///< end-to-end energy, dense / pattern
};

struct NetworkCost {
  double cycles = 0.0;
  double energy = 0.0;
};

NetworkCost network_cost(const accel::AcceleratorModel& model,
                         const std::vector<accel::GemmWorkload>& net,
                         const std::vector<accel::SparsityProfile>& profiles) {
  NetworkCost t;
  for (std::size_t i = 0; i < net.size(); ++i) {
    const accel::SimResult r = model.simulate(net[i], profiles[i]);
    t.cycles += r.cycles;
    t.energy += r.energy_pj;
  }
  return t;
}

}  // namespace

int main() {
  bench::print_header(
      "ablation_patterns — sparsity pattern at matched budget",
      "design rationale of §I / §III-A (pattern choice), Fig. 3 + Fig. 8");

  const double kappa = 0.90;
  const nn::ZooSpec spec = bench::bench_spec(nn::ModelKind::kResNet50,
                                             nn::DatasetKind::kImageNetLike);
  nn::PretrainedModel pm = nn::zoo_pretrained(spec, /*verbose=*/true);
  const TensorMap snapshot = pm.model->state_dict();

  Rng crng(11);
  const auto classes =
      data::sample_user_classes(pm.data.train.num_classes, 10, crng);
  const data::Dataset user_train = data::filter_classes(pm.data.train, classes);
  const data::Dataset user_test = data::filter_classes(pm.data.test, classes);

  const std::int64_t iters = bench::fast_mode() ? 2 : 3;
  const std::int64_t recovery = bench::fast_mode() ? 8 : 12;

  // --- accuracy side (bench-scale training) ---------------------------------
  std::vector<PatternResult> results;
  std::vector<core::LayerNmChoice> layerwise_choices;

  {
    PatternResult r{"unstructured"};
    bench::restore(*pm.model, snapshot);
    core::UnstructuredPruneConfig cfg;
    cfg.target_sparsity = kappa;
    cfg.iterations = iters;
    cfg.finetune_epochs = 2;
    cfg.recovery_epochs = recovery;
    Rng rng(4);
    core::UnstructuredPruner pruner(*pm.model, cfg);
    r.achieved = pruner.run(user_train, rng).achieved_sparsity;
    r.accuracy = nn::evaluate(*pm.model, user_test, 64, classes);
    r.flops_ratio = bench::flops_ratio(*pm.model, spec.input_size);
    results.push_back(r);
  }
  {
    PatternResult r{"channel (OCAP-like)"};
    bench::restore(*pm.model, snapshot);
    core::ChannelPruneConfig cfg;
    cfg.target_sparsity = kappa;
    cfg.iterations = iters;
    cfg.finetune_epochs = 2;
    Rng rng(4);
    core::ChannelPruner pruner(*pm.model, cfg);
    const auto report = pruner.run(user_train, rng);
    // Match the total fine-tune budget of the other patterns.
    nn::TrainConfig tc;
    tc.epochs = recovery;
    tc.sgd.lr = 0.01f;
    tc.lr_decay = 0.92f;
    nn::train(*pm.model, user_train, tc, rng);
    r.achieved = report.mask_sparsity;
    r.accuracy = nn::evaluate(*pm.model, user_test, 64, classes);
    r.flops_ratio = report.effective_flops_ratio;
    results.push_back(r);
  }
  {
    PatternResult r{"layer-wise N:M"};
    bench::restore(*pm.model, snapshot);
    core::LayerwiseNmConfig cfg;
    cfg.m = 4;
    // The pattern's structural ceiling is 1 - 1/M = 0.75; ask for just
    // under it and report what it actually reaches.
    cfg.target_sparsity = 0.72;
    cfg.iterations = iters;
    cfg.finetune_epochs = 2;
    cfg.recovery_epochs = recovery;
    Rng rng(4);
    core::LayerwiseNmPruner pruner(*pm.model, cfg);
    const auto report = pruner.run(user_train, rng);
    layerwise_choices = report.choices;
    r.achieved = report.achieved_sparsity;
    r.accuracy = nn::evaluate(*pm.model, user_test, 64, classes);
    r.flops_ratio = bench::flops_ratio(*pm.model, spec.input_size);
    results.push_back(r);
  }
  {
    PatternResult r{"block-only B=8"};
    bench::restore(*pm.model, snapshot);
    core::CrispConfig cfg = core::block_pruning_config(8, kappa, iters, 2);
    cfg.recovery_epochs = recovery;
    Rng rng(4);
    core::CrispPruner pruner(*pm.model, cfg);
    r.achieved = pruner.run(user_train, rng).achieved_sparsity();
    r.accuracy = nn::evaluate(*pm.model, user_test, 64, classes);
    r.flops_ratio = bench::flops_ratio(*pm.model, spec.input_size);
    results.push_back(r);
  }
  {
    PatternResult r{"CRISP 2:4 B=8"};
    bench::restore(*pm.model, snapshot);
    core::CrispConfig cfg = bench::bench_crisp_config(kappa, 2, 4, 8);
    cfg.iterations = iters;
    cfg.recovery_epochs = recovery;
    Rng rng(4);
    core::CrispPruner pruner(*pm.model, cfg);
    r.achieved = pruner.run(user_train, rng).achieved_sparsity();
    r.accuracy = nn::evaluate(*pm.model, user_test, 64, classes);
    r.flops_ratio = bench::flops_ratio(*pm.model, spec.input_size);
    results.push_back(r);
  }

  // --- hardware side (real ResNet-50 shapes, edge fabric) -------------------
  const accel::AcceleratorConfig config = accel::AcceleratorConfig::edge_default();
  const accel::EnergyModel energy = accel::EnergyModel::edge_default();
  const auto net = accel::resnet50_imagenet_workloads();
  const auto layer_count = static_cast<std::int64_t>(net.size());

  const accel::DenseModel dense_model(config, energy);
  const accel::CrispStc crisp_model(config, energy);
  const std::vector<accel::SparsityProfile> dense_profiles(
      net.size(), accel::SparsityProfile::dense());
  const NetworkCost dense_cost =
      network_cost(dense_model, net, dense_profiles);

  // unstructured: random non-zeros defeat the STC datapath — executes dense.
  results[0].speedup = 1.0;
  results[0].energy_eff = 1.0;

  // channel: rows (and next-layer reduction) shrink by the kept fraction —
  // a smaller dense GEMM.
  {
    const double kept = 1.0 - results[1].achieved;
    std::vector<accel::GemmWorkload> shrunk = net;
    for (auto& w : shrunk) {
      w.s = std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                          static_cast<double>(w.s) * kept));
      w.k = std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                          static_cast<double>(w.k) * kept));
    }
    const NetworkCost c = network_cost(dense_model, shrunk, dense_profiles);
    results[1].speedup = dense_cost.cycles / c.cycles;
    results[1].energy_eff = dense_cost.energy / c.energy;
  }

  // layer-wise N:M: a flexible-N:M STC fabric, no block skip. Per-layer N
  // resampled (by depth) from the ratios the search actually chose.
  {
    std::vector<accel::SparsityProfile> profiles(net.size());
    const auto nb = static_cast<std::int64_t>(layerwise_choices.size());
    for (std::int64_t i = 0; i < layer_count; ++i) {
      accel::SparsityProfile p;
      p.m = 4;
      const std::int64_t src =
          nb <= 1 ? 0 : i * (nb - 1) / std::max<std::int64_t>(1, layer_count - 1);
      p.n = std::clamp<std::int64_t>(
          nb == 0 ? 2 : layerwise_choices[static_cast<std::size_t>(src)].n, 1,
          4);
      p.kept_cols_fraction = 1.0;  // no block component
      p.block = 64;
      profiles[static_cast<std::size_t>(i)] = p;
    }
    const NetworkCost c = network_cost(crisp_model, net, profiles);
    results[2].speedup = dense_cost.cycles / c.cycles;
    results[2].energy_eff = dense_cost.energy / c.energy;
  }

  // block-only and CRISP: the CRISP-STC datapath, kept-column fraction from
  // the achieved sparsity.
  for (const std::size_t idx : {std::size_t{3}, std::size_t{4}}) {
    accel::SparsityProfile p;
    p.block = 64;
    if (idx == 3) {
      p.n = p.m = 1;  // dense inside surviving blocks
      p.kept_cols_fraction = 1.0 - results[idx].achieved;
    } else {
      p.n = 2;
      p.m = 4;
      p.kept_cols_fraction = (1.0 - results[idx].achieved) * 2.0;
    }
    const std::vector<accel::SparsityProfile> profiles(net.size(), p);
    const NetworkCost c = network_cost(crisp_model, net, profiles);
    results[idx].speedup = dense_cost.cycles / c.cycles;
    results[idx].energy_eff = dense_cost.energy / c.energy;
  }

  // --- the table -------------------------------------------------------------
  std::printf("\n%-20s %9s %9s %7s %9s %9s\n", "pattern", "achieved",
              "accuracy", "flops", "speedup", "energyx");
  for (const PatternResult& r : results)
    std::printf("%-20s %8.1f%% %8.1f%% %7.2f %8.1fx %8.1fx\n", r.label,
                100 * r.achieved, 100 * r.accuracy, r.flops_ratio, r.speedup,
                r.energy_eff);

  std::printf("\nexpected shape: unstructured wins accuracy but 1x hardware; "
              "channel wins hardware but loses accuracy; layer-wise N:M caps "
              "at 75%% sparsity with ~2x speedup; among patterns reaching "
              "90%% sparsity CRISP matches the best accuracy at the highest "
              "load-balanced speedup\n");
  return 0;
}
